package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"rtoss/internal/analysis"
)

// vetConfig is the analysis-unit description cmd/go writes for a vet
// tool: one type-checkable package plus the import -> export-data
// mapping of its (already compiled) dependencies. The field set
// mirrors cmd/go/internal/work's vetConfig JSON.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredGoFiles            []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet analysis unit. Exit codes follow
// x/tools' unitchecker: 0 clean, 1 tool/typecheck failure, 2 findings.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtoss-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rtoss-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The suite keeps no cross-package facts, but cmd/go requires the
	// facts ("vetx") output file to exist for caching to work.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte("rtoss-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "rtoss-vet: %v\n", err)
			return false
		}
		return true
	}
	// Dependencies analyzed only for facts need no work at all.
	if cfg.VetxOnly {
		if !writeVetx() {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailure(cfg, err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, compilerOrGC(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: unsafeOr{imp},
		Sizes:    types.SizesFor(compilerOrGC(cfg.Compiler), "amd64"),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailure(cfg, err)
	}

	findings, err := analysis.RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtoss-vet: %v\n", err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return 2
	}
	return 0
}

// typecheckFailure honours SucceedOnTypecheckFailure, which cmd/go
// sets when the package is already known not to compile (the compiler
// will report the errors; vet should stay quiet).
func typecheckFailure(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "rtoss-vet: %s: %v\n", cfg.ImportPath, err)
	return 1
}

func compilerOrGC(compiler string) string {
	if compiler == "" {
		return "gc"
	}
	return compiler
}

// unsafeOr wraps an importer with the "unsafe" special case (it has no
// export data; go/types models it as the singleton types.Unsafe).
type unsafeOr struct{ imp types.Importer }

func (u unsafeOr) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.imp.Import(path)
}
