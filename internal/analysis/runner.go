package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one surfaced diagnostic: which analyzer produced it,
// where, and what it says. Findings suppressed by //rtoss:allow
// comments never become Findings.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies each analyzer to one type-checked package and
// returns the unsuppressed findings in file/position order.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			if f := FileFor(files, d.Pos); f != nil && Allowed(fset, f, a.Name, d.Pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Pos, findings[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
