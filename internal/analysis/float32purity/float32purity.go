// Package float32purity implements the rtoss-vet analyzer enforcing
// //rtoss:f32: functions so annotated are float32 fast-math regions
// (the polynomial sigmoid/exp decoders) and must not silently fall
// back to float64 — neither by calling the float64 math.* functions
// (math.Exp reappearing in the fast path is exactly the regression the
// exact/fast split exists to prevent) nor by round-tripping float32
// values through float64 arithmetic.
//
// One-way conversions out of the region are legitimate boundaries and
// stay unflagged: building float64 output fields (composite literals,
// assignments, returns) or passing float64 arguments to non-math
// calls. What gets flagged is float64(x) on a float32 value feeding
// further arithmetic, a math.* call, or a conversion back to float32 —
// the shapes that smuggle double-precision work into the hot loop.
package float32purity

import (
	"go/ast"
	"go/types"

	"rtoss/internal/analysis"
)

// Analyzer is the //rtoss:f32 enforcement pass.
var Analyzer = &analysis.Analyzer{
	Name: "float32purity",
	Doc:  "flags float64 round-trips and float64 math.* calls inside //rtoss:f32 functions",
	Run:  run,
}

// f32SafeMath are the math package functions that are pure bit/float32
// plumbing rather than float64 computation.
var f32SafeMath = map[string]bool{
	"Float32bits":     true,
	"Float32frombits": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range analysis.MarkedFuncs(pass.Files, "f32") {
		if fn.Body == nil {
			continue
		}
		checkFunc(pass, fn)
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := mathCall(info, call); ok {
			if !f32SafeMath[name] {
				pass.Reportf(call.Pos(), "float64 math.%s call in //rtoss:f32 function %s (use a float32 equivalent)", name, fn.Name.Name)
			}
			return true
		}
		if isConversionTo(info, call, types.Float64) && isFloat32(typeOf(info, call.Args[0])) {
			if feedsArithmetic(info, stack) {
				pass.Reportf(call.Pos(), "float64 round-trip of float32 value in //rtoss:f32 function %s", fn.Name.Name)
			}
		}
		return true
	})
}

// feedsArithmetic inspects the context of a float64(x) conversion: a
// parent that is arithmetic, a math call, or a conversion back to
// float32 means the widened value is computed on (a round-trip); a
// parent that merely stores or returns the value is a legitimate
// boundary conversion.
func feedsArithmetic(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.BinaryExpr, *ast.UnaryExpr:
			return true
		case *ast.CallExpr:
			if _, ok := mathCall(info, p); ok {
				return true
			}
			if tv, ok := info.Types[p.Fun]; ok && tv.IsType() {
				// Conversion: back to float32 closes the round-trip;
				// to anything else it is a new boundary.
				return isFloat32(tv.Type)
			}
			return false // argument of an ordinary call: boundary
		default:
			return false // stored, returned, indexed, ...: boundary
		}
	}
	return false
}

func mathCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" {
		return "", false
	}
	return sel.Sel.Name, true
}

func isConversionTo(info *types.Info, call *ast.CallExpr, kind types.BasicKind) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func isFloat32(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
