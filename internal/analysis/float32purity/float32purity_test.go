package float32purity_test

import (
	"testing"

	"rtoss/internal/analysis/analysistest"
	"rtoss/internal/analysis/float32purity"
)

func TestFloat32Purity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), float32purity.Analyzer, "a")
}
