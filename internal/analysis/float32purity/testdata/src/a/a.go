// Package a exercises the float32purity analyzer: //rtoss:f32
// functions must not call float64 math.* or round-trip float32 values
// through float64 arithmetic, while one-way boundary conversions stay
// unflagged.
package a

import "math"

type result struct{ score float64 }

func sinkF64(v float64) {}

//rtoss:f32
func mathExp(z float32) float32 {
	return float32(math.Exp(float64(z))) // want `float64 math\.Exp call` `float64 round-trip`
}

//rtoss:f32
func roundTrip(x float32) float32 {
	y := float32(float64(x) * 1.5) // want `float64 round-trip of float32 value`
	return y
}

//rtoss:f32
func bitsAreSafe(x float32) uint32 {
	return math.Float32bits(x)
}

// boundary pins the legitimate one-way exits: storing, returning and
// passing a widened value without computing on it.
//
//rtoss:f32
func boundary(x float32) (result, float64) {
	var r result
	r.score = float64(x)
	sinkF64(float64(x))
	return r, float64(x)
}

// allowSqrt pins the escape hatch.
//
//rtoss:f32
func allowSqrt(x float32) float32 {
	return float32(math.Sqrt(float64(x))) //rtoss:allow float32purity (cold path)
}

// unannotated may use float64 math freely.
func unannotated(z float64) float64 {
	return math.Exp(z)
}
