// Package arenaescape implements the rtoss-vet analyzer enforcing the
// arena containment rule from the execution engine: tensors obtained
// from a tensor.Arena (Arena.Get) are owned by the current run and
// must be returned to the arena, not retained. Within any function, a
// value traced to an Arena.Get call must not be returned, stored into
// a struct field, or stored into a package-level variable — those are
// the shapes that let a recycled buffer outlive the run that borrowed
// it, which is a use-after-Put data race the type system cannot
// express. The engine's Heads keep-list is the sanctioned way for a
// buffer to survive a run; the few plumbing functions that hand arena
// buffers around on purpose (e.g. the engine's per-layer allocator)
// are annotated //rtoss:arena-owner, which exempts the whole function.
//
// The analysis is function-local taint tracking: Arena.Get results and
// their direct aliases are tainted; passing a tainted value to another
// function is not flagged (the callee is analyzed in its own right if
// annotated). That keeps the check conservative in the direction that
// matters — it cannot prove safety, but every flag it raises is a
// retention the keep-list rule requires a human decision on.
package arenaescape

import (
	"go/ast"
	"go/types"
	"strings"

	"rtoss/internal/analysis"
)

// Analyzer is the arena containment pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc:  "flags tensor.Arena buffers escaping via returns, struct fields or globals",
	Run:  run,
}

// arenaPkgSuffix identifies the package defining the Arena type. A
// suffix match (rather than the literal "rtoss/internal/tensor") lets
// the analysistest fixtures provide a stand-in package under the same
// tail path.
const arenaPkgSuffix = "internal/tensor"

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || analysis.HasDirective(fn.Doc, "arena-owner") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Fixpoint taint collection: objects bound to Arena.Get results or
	// to already-tainted identifiers.
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if !isTaintedExpr(info, rhs, tainted) {
					continue
				}
				if id, ok := assign.Lhs[i].(*ast.Ident); ok {
					if obj := lhsObj(info, id); obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isTaintedExpr(info, res, tainted) {
					pass.Reportf(res.Pos(), "tensor.Arena buffer returned from %s escapes its run (route it through the engine keep-list or annotate //rtoss:arena-owner)", fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isTaintedExpr(info, rhs, tainted) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
						pass.Reportf(n.Pos(), "tensor.Arena buffer stored into struct field %s escapes its run", types.ExprString(lhs))
					}
				case *ast.Ident:
					if obj := info.Uses[lhs]; obj != nil && isGlobal(obj) {
						pass.Reportf(n.Pos(), "tensor.Arena buffer stored into package-level variable %s escapes its run", lhs.Name)
					}
				case *ast.IndexExpr:
					if base, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
						if sel, ok := info.Selections[base]; ok && sel.Kind() == types.FieldVal {
							pass.Reportf(n.Pos(), "tensor.Arena buffer stored into struct field %s escapes its run", types.ExprString(base))
						}
					} else if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && isGlobal(obj) {
							pass.Reportf(n.Pos(), "tensor.Arena buffer stored into package-level variable %s escapes its run", id.Name)
						}
					}
				}
			}
		}
		return true
	})
}

// isTaintedExpr reports whether expr is a direct Arena.Get call or an
// identifier already known to hold one.
func isTaintedExpr(info *types.Info, expr ast.Expr, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj != nil && tainted[obj]
	case *ast.CallExpr:
		return isArenaGet(info, e)
	}
	return false
}

// isArenaGet reports whether call is (*Arena).Get on the tensor
// package's Arena type.
func isArenaGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	t := typeOf(info, sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Arena" || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), arenaPkgSuffix)
}

func lhsObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isGlobal(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
