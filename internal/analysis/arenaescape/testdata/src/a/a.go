// Package a exercises the arenaescape analyzer: Arena.Get results must
// not outlive the run via returns, struct fields or globals, while
// contained borrow/compute/Put usage and //rtoss:arena-owner plumbing
// stay unflagged.
package a

import "internal/tensor"

type holder struct {
	buf   []float32
	slots [][]float32
}

var global []float32

func escapeReturn(a *tensor.Arena) []float32 {
	buf := a.Get(8)
	return buf // want `returned from escapeReturn escapes its run`
}

func escapeDirect(a *tensor.Arena) []float32 {
	return a.Get(8) // want `returned from escapeDirect escapes its run`
}

func escapeAlias(a *tensor.Arena) []float32 {
	buf := a.Get(8)
	alias := buf
	return alias // want `returned from escapeAlias escapes its run`
}

func fieldStore(h *holder, a *tensor.Arena) {
	h.buf = a.Get(8) // want `stored into struct field h\.buf`
}

func globalStore(a *tensor.Arena) {
	global = a.Get(8) // want `stored into package-level variable global`
}

func indexStore(h *holder, a *tensor.Arena) {
	h.slots[0] = a.Get(8) // want `stored into struct field h\.slots`
}

// contained is the sanctioned lifecycle: borrow, compute, return to
// the arena, hand back only derived scalars.
func contained(a *tensor.Arena, xs []float32) float32 {
	buf := a.Get(len(xs))
	var sum float32
	for i, x := range xs {
		buf[i] = x * x
		sum += buf[i]
	}
	a.Put(buf)
	return sum
}

// owner is sanctioned plumbing: the annotation exempts the function.
//
//rtoss:arena-owner
func owner(a *tensor.Arena, n int) []float32 {
	return a.Get(n)
}
