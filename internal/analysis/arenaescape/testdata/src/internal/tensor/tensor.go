// Package tensor is a stand-in for rtoss/internal/tensor: the
// arenaescape analyzer matches the Arena type by package-path suffix,
// so this fixture copy exercises the same detection.
package tensor

// Arena mimics the real pooled-buffer arena.
type Arena struct{ free [][]float32 }

// Get borrows a buffer from the arena.
func (a *Arena) Get(n int) []float32 { return make([]float32, n) }

// Put returns a buffer to the arena.
func (a *Arena) Put(buf []float32) { a.free = append(a.free, buf) }
