package arenaescape_test

import (
	"testing"

	"rtoss/internal/analysis/analysistest"
	"rtoss/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenaescape.Analyzer, "a")
}
