// Package analysis is the project's static-analysis framework: a
// deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic) that
// the rtoss-vet analyzer suite is written against. The build
// environment is offline and the module has no external dependencies,
// so instead of importing x/tools this package reimplements the thin
// slice of it the suite needs on top of the standard library's go/ast
// and go/types; because the API shape matches, the analyzers can be
// ported to the real framework by changing only import paths.
//
// The suite enforces the performance contract the serving stack's
// real-time claim depends on, via source annotations:
//
//	//rtoss:noalloc      the function must not contain allocating
//	                     constructs (checked by the noalloc analyzer)
//	//rtoss:f32          the function is a float32 fast-math region:
//	                     no float64 round-trips or float64 math.* calls
//	                     (checked by the float32purity analyzer)
//	//rtoss:arena-owner  the function is part of the arena plumbing and
//	                     may retain/return tensor.Arena buffers
//	                     (exempts it from the arenaescape analyzer)
//	//rtoss:allow <name> on (or immediately above) an offending line:
//	                     suppress that analyzer's diagnostics for the
//	                     line, for deliberate exceptions such as
//	                     amortized pool growth
//
// Analyzers live in the subpackages noalloc, float32purity,
// arenaescape and lockdiscipline; the multichecker binary is
// cmd/rtoss-vet (standalone `rtoss-vet ./...` or
// `go vet -vettool=$(which rtoss-vet) ./...`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass: a name (used in
// diagnostics and //rtoss:allow suppressions), documentation, and the
// function applying it to one package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions. It
	// must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation, shown by rtoss-vet -help.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Report / pass.Reportf. The returned value is unused (kept
	// for x/tools API compatibility).
	Run func(pass *Pass) (any, error)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver wires it up and
	// applies //rtoss:allow suppression before surfacing the finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// HasDirective reports whether the comment group contains the
// //rtoss:<name> directive. Directive comments (no space after //) are
// stripped from doc.Text() by the parser but retained in the group's
// comment list, which is what this inspects.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//rtoss:" + name
	for _, c := range doc.List {
		text := strings.TrimRight(c.Text, " \t")
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// MarkedFuncs returns every function declaration in files whose doc
// comment carries the //rtoss:<name> directive.
func MarkedFuncs(files []*ast.File, name string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && HasDirective(fn.Doc, name) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// Allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed by a "//rtoss:allow <name>" comment on the same line or
// the line immediately above. file must be the *ast.File containing
// pos.
func Allowed(fset *token.FileSet, file *ast.File, name string, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "rtoss:allow ") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "rtoss:allow "))
			ok := false
			for _, f := range strings.Fields(rest) {
				if f == name {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// FileFor returns the *ast.File among files containing pos, or nil.
func FileFor(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// WalkStack traverses the subtree rooted at n in depth-first order,
// calling fn with each node and the stack of its ancestors (outermost
// first, not including the node itself). Returning false from fn
// prunes the node's subtree. It is the framework's stand-in for
// x/tools' inspector.WithStack.
func WalkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
