package prune

import (
	"math"
	"testing"
	"testing/quick"

	"rtoss/internal/nn"
)

func tinyModel(t testing.TB) *nn.Model {
	t.Helper()
	b := nn.NewBuilder("tiny", 3, 8, 8, 2)
	x := b.Input()
	x = b.ConvBNAct("c1", x, 3, 4, 3, 1, 1, nn.ReLU)
	b.Conv("c2", x, 4, 2, 1, 1, 0, true)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.InitWeights(3)
	return m
}

func TestStructureStrings(t *testing.T) {
	cases := map[Structure]string{
		Dense: "dense", Unstructured: "unstructured", Pattern: "pattern",
		Channel: "channel", Filter: "filter", Mixed: "mixed",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q want %q", s, s.String(), want)
		}
	}
	if Structure(99).String() == "" {
		t.Error("unknown structure should still stringify")
	}
}

func TestStatForAndFinish(t *testing.T) {
	m := tinyModel(t)
	l := m.ConvLayers()[0]
	st := StatFor(l)
	if st.Weights != 4*3*3*3 {
		t.Fatalf("weights %d", st.Weights)
	}
	if st.NNZBefore != st.Weights {
		t.Fatalf("fresh layer should be dense: %d/%d", st.NNZBefore, st.Weights)
	}
	if st.GroupRoot != -1 {
		t.Fatal("default group root should be -1")
	}
	l.Weight.Data[0] = 0
	st.Finish(l)
	if st.NNZAfter != st.Weights-1 {
		t.Fatalf("NNZAfter %d", st.NNZAfter)
	}
}

func TestResultSparsityAndCompression(t *testing.T) {
	r := &Result{
		Layers: []LayerStat{
			{Weights: 100, NNZAfter: 25},
			{Weights: 100, NNZAfter: 75},
		},
		ParamsTotal: 220,
		ParamsNNZ:   110,
	}
	if r.TotalWeights() != 200 || r.NNZAfter() != 100 {
		t.Fatalf("totals %d %d", r.TotalWeights(), r.NNZAfter())
	}
	if r.Sparsity() != 0.5 {
		t.Fatalf("sparsity %v", r.Sparsity())
	}
	if r.CompressionRatio() != 2 {
		t.Fatalf("compression %v", r.CompressionRatio())
	}
}

func TestResultEdgeCases(t *testing.T) {
	empty := &Result{}
	if empty.Sparsity() != 0 {
		t.Error("empty result sparsity should be 0")
	}
	if empty.CompressionRatio() != 1 {
		t.Error("empty result compression should be 1")
	}
	if empty.DistinctPatterns() != 0 {
		t.Error("empty result should report no patterns")
	}
}

func TestFillParamsCountsEverything(t *testing.T) {
	m := tinyModel(t)
	r := &Result{}
	r.FillParams(m)
	// conv1 108 + bn 8 + conv2 8 weights + 2 bias = 126 params total.
	if r.ParamsTotal != m.Params() {
		t.Fatalf("ParamsTotal %d want %d", r.ParamsTotal, m.Params())
	}
	if r.ParamsNNZ != r.ParamsTotal {
		t.Fatalf("dense model should have NNZ == total: %d vs %d", r.ParamsNNZ, r.ParamsTotal)
	}
	// Zero half of conv1: NNZ must drop by exactly that amount.
	l := m.ConvLayers()[0]
	zeroed := int64(0)
	for i := 0; i < l.Weight.Len()/2; i++ {
		if l.Weight.Data[i] != 0 {
			zeroed++
		}
		l.Weight.Data[i] = 0
	}
	r2 := &Result{}
	r2.FillParams(m)
	if r2.ParamsNNZ != r.ParamsNNZ-zeroed {
		t.Fatalf("NNZ accounting off: %d want %d", r2.ParamsNNZ, r.ParamsNNZ-zeroed)
	}
}

func TestFillParamsCountsBNAndBias(t *testing.T) {
	m := tinyModel(t)
	// Even with all prunable weights zeroed, BN and bias params remain.
	for _, l := range m.ConvLayers() {
		l.Weight.Zero()
	}
	r := &Result{}
	r.FillParams(m)
	// BN gamma+beta (8) + conv2 bias (2) = 10 surviving params.
	if r.ParamsNNZ != 10 {
		t.Fatalf("surviving params %d want 10", r.ParamsNNZ)
	}
}

func TestQuickSparsityInUnitRange(t *testing.T) {
	f := func(weights []int64, nnzFracs []uint8) bool {
		r := &Result{}
		for i, w := range weights {
			if w < 0 {
				w = -w
			}
			w %= 10000
			var nnz int64
			if i < len(nnzFracs) && w > 0 {
				nnz = w * int64(nnzFracs[i]%101) / 100
			}
			r.Layers = append(r.Layers, LayerStat{Weights: w, NNZAfter: nnz})
		}
		s := r.Sparsity()
		return !math.IsNaN(s) && s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
