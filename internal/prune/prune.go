// Package prune defines the contract shared by every pruning framework
// in the repository — R-TOSS (internal/core) and the five baselines
// (internal/baselines) — plus the result/accounting types the
// experiment harness consumes.
package prune

import (
	"time"

	"rtoss/internal/nn"
)

// Structure classifies the sparsity structure a framework induces. The
// hardware model maps structure to effective GPU utilisation (regular
// sparsity is acceleratable; irregular sparsity mostly is not), the
// sparse package maps it to a storage format, and the execution engine
// maps it to a dense or sparse convolution kernel. The underlying type
// lives in package nn so layer descriptors can record it per layer.
type Structure = nn.Sparsity

// Sparsity structures, ordered roughly by regularity.
const (
	// Dense: no pruning (the Base Model).
	Dense = nn.SparsityDense
	// Unstructured: element-wise sparsity (magnitude pruning).
	Unstructured = nn.SparsityUnstructured
	// Pattern: semi-structured kernel patterns (R-TOSS, PatDNN).
	Pattern = nn.SparsityPattern
	// Channel: whole input channels removed (Network Slimming).
	Channel = nn.SparsityChannel
	// Filter: whole filters removed (Pruning Filters).
	Filter = nn.SparsityFilter
	// Mixed: filter pruning combined with unstructured weight pruning
	// (Neural Pruning).
	Mixed = nn.SparsityMixed
)

// Pruner is a pruning framework. Prune mutates the model's weight
// tensors in place (callers pass a clone when the original matters) and
// returns the accounting of what was removed.
type Pruner interface {
	// Name is the display name used in tables/figures (e.g. "R-TOSS (2EP)").
	Name() string
	// Prune sparsifies the model in place.
	Prune(m *nn.Model) (*Result, error)
}

// LayerStat records per-layer pruning accounting.
type LayerStat struct {
	LayerID   int
	Name      string
	K         int // spatial kernel size (1 or 3 for pattern targets)
	Weights   int64
	NNZBefore int64
	NNZAfter  int64
	// RemovedKernels counts whole spatial kernels zeroed (connectivity
	// pruning in PatDNN; kernel-granular removals elsewhere).
	RemovedKernels int64
	// RemovedFilters counts whole filters (output channels) zeroed.
	RemovedFilters int
	// RemovedChannels counts whole input channels zeroed.
	RemovedChannels int
	// GroupRoot is the Algorithm 1 group root this layer belongs to
	// (-1 when grouping does not apply).
	GroupRoot int
	// Inherited marks layers whose masks were copied from their group
	// parent instead of searched (the Algorithm 1 cost saving).
	Inherited bool
}

// Result is a pruning run's full accounting.
type Result struct {
	Framework string
	Model     string
	Structure Structure
	Layers    []LayerStat
	// Groups is the number of Algorithm 1 groups (0 when not used).
	Groups int
	// BestFitSearches counts pattern best-fit searches actually run;
	// InheritedKernels counts kernels that reused a parent's mask.
	// Their ratio quantifies the DFS-grouping saving (ablation A1).
	BestFitSearches  int64
	InheritedKernels int64
	Duration         time.Duration
	// ParamsTotal / ParamsNNZ include non-prunable parameters (biases,
	// batch-norm affine); their ratio is the model compression the
	// paper reports (e.g. 4.4× for R-TOSS-2EP on YOLOv5s).
	ParamsTotal int64
	ParamsNNZ   int64
	// PatternHist counts kernels per assigned pattern mask (key is the
	// 9-bit mask value) for pattern-based frameworks; nil otherwise.
	// Its key count verifies the paper's "21 pre-defined patterns at
	// inference" claim.
	PatternHist map[uint16]int64
}

// DistinctPatterns returns the number of distinct masks assigned.
func (r *Result) DistinctPatterns() int { return len(r.PatternHist) }

// TotalWeights returns prunable weights across recorded layers.
func (r *Result) TotalWeights() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.Weights
	}
	return n
}

// NNZAfter returns surviving non-zeros across recorded layers.
func (r *Result) NNZAfter() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.NNZAfter
	}
	return n
}

// Sparsity returns the induced sparsity over recorded layers in [0, 1].
func (r *Result) Sparsity() float64 {
	w := r.TotalWeights()
	if w == 0 {
		return 0
	}
	return 1 - float64(r.NNZAfter())/float64(w)
}

// CompressionRatio returns ParamsTotal / ParamsNNZ — the paper's
// "reduction ratio" (Table 3) and "compression rate" (abstract).
func (r *Result) CompressionRatio() float64 {
	if r.ParamsNNZ == 0 {
		return 1
	}
	return float64(r.ParamsTotal) / float64(r.ParamsNNZ)
}

// FillParams computes ParamsTotal/ParamsNNZ from the model after
// pruning: all parameters count, zeros in prunable weight tensors drop
// out of ParamsNNZ. It also records the run's sparsity structure on
// every layer the pruner touched, which is what the execution engine's
// auto mode dispatches sparse kernels on.
func (r *Result) FillParams(m *nn.Model) {
	for _, s := range r.Layers {
		if s.NNZAfter < s.NNZBefore {
			m.Layers[s.LayerID].Structure = r.Structure
		}
	}
	r.ParamsTotal = m.Params()
	var nnz int64
	for _, l := range m.Layers {
		switch l.Kind {
		case nn.Conv:
			nnz += int64(l.Weight.NNZ())
			if l.Bias != nil {
				nnz += int64(len(l.Bias))
			}
		case nn.BatchNorm:
			nnz += int64(2 * len(l.Gamma))
		case nn.Linear:
			if l.LinW != nil {
				nnz += int64(l.LinW.NNZ())
			}
			if l.LinB != nil {
				nnz += int64(len(l.LinB))
			}
		}
	}
	r.ParamsNNZ = nnz
}

// StatFor initialises a LayerStat snapshot for a conv layer before
// pruning it.
func StatFor(l *nn.Layer) LayerStat {
	return LayerStat{
		LayerID:   l.ID,
		Name:      l.Name,
		K:         l.KH,
		Weights:   l.WeightCount(),
		NNZBefore: l.NNZ(),
		GroupRoot: -1,
	}
}

// Finish completes a LayerStat after pruning.
func (s *LayerStat) Finish(l *nn.Layer) {
	s.NNZAfter = l.NNZ()
}
