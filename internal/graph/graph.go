// Package graph implements the computational-graph substrate that
// R-TOSS's Algorithm 1 operates on: a DAG of layer nodes, traversal
// utilities, and the DFS-based parent-child layer grouping that lets a
// pattern chosen for a parent layer be shared by its coupled children.
//
// In the paper the graph is recovered from autograd traces of a PyTorch
// model; here producers/consumers are explicit edges supplied by the
// model builders in internal/models, which preserves exactly the
// information Algorithm 1 consumes (who feeds whom, and which layers
// have coupled channels).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a directed graph over nodes 0..n-1. Edges point from a
// producer (parent) to a consumer (child).
type Graph struct {
	n    int
	adj  [][]int // children
	radj [][]int // parents
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n), radj: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a producer→consumer edge. Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to int) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	for _, c := range g.adj[from] {
		if c == to {
			return
		}
	}
	g.adj[from] = append(g.adj[from], to)
	g.radj[to] = append(g.radj[to], from)
}

// Children returns the consumers of node v (do not mutate).
func (g *Graph) Children(v int) []int { return g.adj[v] }

// Parents returns the producers feeding node v (do not mutate).
func (g *Graph) Parents(v int) []int { return g.radj[v] }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, c := range g.adj {
		n += len(c)
	}
	return n
}

// ErrCycle is returned by TopoSort when the graph is not a DAG.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological order (Kahn's algorithm) or ErrCycle.
// Ties are broken toward lower node IDs for determinism.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		for range g.radj[v] {
			indeg[v]++
		}
	}
	var ready []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, c := range g.adj[v] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// DFS performs a depth-first traversal over children starting at start,
// invoking visit for each newly reached node (including start). If visit
// returns false the traversal does not descend past that node.
func (g *Graph) DFS(start int, visit func(int) bool) {
	seen := make([]bool, g.n)
	var rec func(int)
	rec = func(v int) {
		if seen[v] {
			return
		}
		seen[v] = true
		if !visit(v) {
			return
		}
		for _, c := range g.adj[v] {
			rec(c)
		}
	}
	rec(start)
}

// HasPath reports whether node b is reachable from node a.
func (g *Graph) HasPath(a, b int) bool {
	found := false
	g.DFS(a, func(v int) bool {
		if v == b {
			found = true
		}
		return !found
	})
	return found
}

// GroupSpec configures Algorithm 1's layer grouping.
type GroupSpec struct {
	// IsKernel reports whether the node carries prunable convolution
	// kernels (layers that participate in groups).
	IsKernel func(id int) bool
	// IsTransparent reports whether the DFS may traverse the node when
	// searching for a kernel ancestor (batch norm, activations, pooling,
	// upsampling, element-wise ops — anything that preserves the channel
	// relationship between the convs it connects).
	IsTransparent func(id int) bool
	// Coupled reports whether a child kernel layer has coupled channels
	// with the candidate parent kernel layer and may therefore share its
	// kernel patterns (paper: "layers in each group have coupled
	// channels ... hence they can share the same kernel patterns").
	Coupled func(parent, child int) bool
}

// Group is one parent-child layer group produced by Algorithm 1.
// Members is sorted ascending and always contains Parent.
type Group struct {
	Parent  int
	Members []int
}

// NearestKernelAncestors returns the kernel nodes reachable from id by
// walking producer edges through transparent nodes only, stopping at the
// first kernel node along each path. Result is sorted ascending.
func NearestKernelAncestors(g *Graph, id int, spec GroupSpec) []int {
	seen := make(map[int]bool)
	found := make(map[int]bool)
	var rec func(int)
	rec = func(v int) {
		for _, p := range g.radj[v] {
			if seen[p] {
				continue
			}
			seen[p] = true
			if spec.IsKernel(p) {
				found[p] = true
				continue // stop at the first kernel on this path
			}
			if spec.IsTransparent(p) {
				rec(p)
			}
		}
	}
	rec(id)
	out := make([]int, 0, len(found))
	for v := range found {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// BuildGroups implements Algorithm 1 (layer grouping using DFS).
//
// Kernel layers are visited in topological order. For each layer the DFS
// finds its nearest kernel ancestors through transparent nodes; the
// first coupled ancestor (lowest ID, for determinism) becomes the
// layer's parent, and the layer joins the group rooted at that parent's
// own root — so chains of coupled layers collapse into one group, as in
// the paper ("this layer now becomes the parent layer of the child layer
// and added to that group"). A layer with no coupled kernel ancestor is
// assigned as its own parent and roots a new group.
func BuildGroups(g *Graph, spec GroupSpec) []Group {
	order, err := g.TopoSort()
	if err != nil {
		panic("graph: BuildGroups requires a DAG: " + err.Error())
	}
	rootOf := make(map[int]int) // kernel node -> its group root
	groups := make(map[int][]int)
	for _, v := range order {
		if !spec.IsKernel(v) {
			continue
		}
		parent := -1
		for _, anc := range NearestKernelAncestors(g, v, spec) {
			if spec.Coupled == nil || spec.Coupled(anc, v) {
				parent = anc
				break
			}
		}
		if parent < 0 {
			rootOf[v] = v
			groups[v] = append(groups[v], v)
			continue
		}
		root, ok := rootOf[parent]
		if !ok {
			// The ancestor was never grouped (possible only if it is not
			// a kernel node by spec at its visit time; defensive).
			root = parent
			rootOf[parent] = parent
			groups[parent] = append(groups[parent], parent)
		}
		rootOf[v] = root
		groups[root] = append(groups[root], v)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]Group, 0, len(roots))
	for _, r := range roots {
		members := groups[r]
		sort.Ints(members)
		out = append(out, Group{Parent: r, Members: members})
	}
	return out
}

// GroupOf returns the group containing node id, or nil.
func GroupOf(groups []Group, id int) *Group {
	for i := range groups {
		for _, m := range groups[i].Members {
			if m == id {
				return &groups[i]
			}
		}
	}
	return nil
}
