package graph

import (
	"testing"
	"testing/quick"

	"rtoss/internal/rng"
)

func chain(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
}

func TestAddEdgeBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestTopoSortChain(t *testing.T) {
	g := chain(5)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("invalid topo order %v", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("err=%v want ErrCycle", err)
	}
}

func TestHasPath(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if !g.HasPath(0, 2) || g.HasPath(0, 4) || g.HasPath(2, 0) {
		t.Fatal("HasPath wrong")
	}
	if !g.HasPath(3, 3) {
		t.Fatal("node should reach itself")
	}
}

func TestDFSVisitOrderAndPruning(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	var visited []int
	g.DFS(0, func(v int) bool {
		visited = append(visited, v)
		return v != 1 // do not descend past 1
	})
	for _, v := range visited {
		if v == 2 {
			t.Fatal("DFS descended past pruned node")
		}
	}
	found3 := false
	for _, v := range visited {
		if v == 3 {
			found3 = true
		}
	}
	if !found3 {
		t.Fatal("DFS missed sibling branch")
	}
}

// allCoupled is the GroupSpec where every node is a kernel and any
// parent couples with any child.
func allCoupled() GroupSpec {
	return GroupSpec{
		IsKernel:      func(int) bool { return true },
		IsTransparent: func(int) bool { return false },
		Coupled:       func(p, c int) bool { return true },
	}
}

func TestBuildGroupsChainCollapses(t *testing.T) {
	// conv0 -> conv1 -> conv2: one group rooted at 0 (Algorithm 1:
	// chains of coupled layers join the root's group).
	g := chain(3)
	groups := BuildGroups(g, allCoupled())
	if len(groups) != 1 {
		t.Fatalf("groups=%d want 1: %v", len(groups), groups)
	}
	if groups[0].Parent != 0 || len(groups[0].Members) != 3 {
		t.Fatalf("group %v", groups[0])
	}
}

func TestBuildGroupsDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	groups := BuildGroups(g, allCoupled())
	if len(groups) != 2 {
		t.Fatalf("groups=%v", groups)
	}
	if groups[0].Parent != 0 || groups[1].Parent != 2 {
		t.Fatalf("roots %v", groups)
	}
}

func TestBuildGroupsTransparentHop(t *testing.T) {
	// conv0 -> bn1 -> conv2: DFS must see through the BN node.
	g := chain(3)
	spec := GroupSpec{
		IsKernel:      func(v int) bool { return v != 1 },
		IsTransparent: func(v int) bool { return v == 1 },
		Coupled:       func(p, c int) bool { return true },
	}
	groups := BuildGroups(g, spec)
	if len(groups) != 1 || groups[0].Parent != 0 {
		t.Fatalf("groups=%v", groups)
	}
	members := groups[0].Members
	if len(members) != 2 || members[0] != 0 || members[1] != 2 {
		t.Fatalf("members=%v", members)
	}
}

func TestBuildGroupsOpaqueBlocksSearch(t *testing.T) {
	// conv0 -> opaque1 -> conv2: node 1 is neither kernel nor transparent,
	// so conv2 has no visible ancestor and roots its own group.
	g := chain(3)
	spec := GroupSpec{
		IsKernel:      func(v int) bool { return v != 1 },
		IsTransparent: func(v int) bool { return false },
		Coupled:       func(p, c int) bool { return true },
	}
	groups := BuildGroups(g, spec)
	if len(groups) != 2 {
		t.Fatalf("groups=%v", groups)
	}
}

func TestBuildGroupsCouplingPredicate(t *testing.T) {
	// Coupling refused: every layer is its own group.
	g := chain(4)
	spec := allCoupled()
	spec.Coupled = func(p, c int) bool { return false }
	groups := BuildGroups(g, spec)
	if len(groups) != 4 {
		t.Fatalf("groups=%v", groups)
	}
}

func TestBuildGroupsEachChildOneParent(t *testing.T) {
	// Diamond: node 3 has two kernel ancestors (1 and 2); it must be
	// assigned to exactly one group (deterministically the lower ID).
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	groups := BuildGroups(g, allCoupled())
	count := 0
	for _, gr := range groups {
		for _, m := range gr.Members {
			if m == 3 {
				count++
			}
		}
	}
	if count != 1 {
		t.Fatalf("node 3 appears in %d groups", count)
	}
}

func TestNearestKernelAncestorsStopsAtKernel(t *testing.T) {
	// conv0 -> conv1 -> bn2 -> conv3: ancestors of 3 = {1} only
	// (search stops at the first kernel per path).
	g := chain(4)
	spec := GroupSpec{
		IsKernel:      func(v int) bool { return v != 2 },
		IsTransparent: func(v int) bool { return v == 2 },
	}
	anc := NearestKernelAncestors(g, 3, spec)
	if len(anc) != 1 || anc[0] != 1 {
		t.Fatalf("ancestors=%v", anc)
	}
}

func TestGroupOf(t *testing.T) {
	g := chain(3)
	groups := BuildGroups(g, allCoupled())
	if gr := GroupOf(groups, 2); gr == nil || gr.Parent != 0 {
		t.Fatalf("GroupOf=%v", gr)
	}
	if GroupOf(groups, 99) != nil {
		t.Fatal("GroupOf out-of-range should be nil")
	}
}

// TestQuickGroupsPartition checks the fundamental invariant of
// Algorithm 1 output on random DAGs: groups partition the kernel nodes
// (every kernel node in exactly one group) and each parent is a member
// of its own group.
func TestQuickGroupsPartition(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := rng.New(seed)
		g := New(n)
		// Random DAG: edges only forward to keep it acyclic.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.25 {
					g.AddEdge(i, j)
				}
			}
		}
		kernel := make([]bool, n)
		for i := range kernel {
			kernel[i] = r.Float64() < 0.7
		}
		spec := GroupSpec{
			IsKernel:      func(v int) bool { return kernel[v] },
			IsTransparent: func(v int) bool { return !kernel[v] },
			Coupled:       func(p, c int) bool { return (p+c)%2 == 0 || r.Float64() < 2 }, // always true, keep deterministic shape
		}
		groups := BuildGroups(g, spec)
		seen := make(map[int]int)
		for _, gr := range groups {
			inGroup := false
			for _, m := range gr.Members {
				seen[m]++
				if m == gr.Parent {
					inGroup = true
				}
				if !kernel[m] {
					return false // non-kernel node grouped
				}
			}
			if !inGroup {
				return false // parent missing from its own group
			}
		}
		for v := 0; v < n; v++ {
			want := 0
			if kernel[v] {
				want = 1
			}
			if seen[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopoSortIsValidOrder(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%25) + 1
		r := rng.New(seed)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < n; v++ {
			for _, c := range g.Children(v) {
				if pos[v] >= pos[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildGroupsChain100(b *testing.B) {
	g := chain(100)
	spec := allCoupled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildGroups(g, spec)
	}
}

func BenchmarkTopoSort1000(b *testing.B) {
	g := chain(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.TopoSort()
	}
}
