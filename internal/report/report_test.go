package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tab.AddRow("short", 1.5)
	tab.AddRow("a-much-longer-name", "x")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line %q", lines[0])
	}
	// All table lines must have equal width (aligned columns).
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("misaligned row %q (want width %d)", l, width)
		}
	}
	if !strings.Contains(out, "1.50") {
		t.Error("float cell not formatted with 2 decimals")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("x", 2)
	csv := tab.CSV()
	if csv != "a,b\nx,2\n" {
		t.Fatalf("csv %q", csv)
	}
}

func TestBarChartScalesToMax(t *testing.T) {
	out := BarChart("chart", []string{"L1"}, []Series{
		{Name: "big", Values: []float64{10}},
		{Name: "small", Values: []float64{1}},
	}, "x", 20)
	lines := strings.Split(out, "\n")
	var bigBars, smallBars int
	for _, l := range lines {
		if strings.Contains(l, "big") {
			bigBars = strings.Count(l, "#")
		}
		if strings.Contains(l, "small") {
			smallBars = strings.Count(l, "#")
		}
	}
	if bigBars != 20 {
		t.Errorf("max value should fill the width: %d bars", bigBars)
	}
	if smallBars < 1 || smallBars >= bigBars {
		t.Errorf("small value bars %d out of range", smallBars)
	}
}

func TestBarChartNonZeroGetsAtLeastOneBar(t *testing.T) {
	out := BarChart("c", []string{"L"}, []Series{
		{Name: "tiny", Values: []float64{0.001}},
		{Name: "huge", Values: []float64{100}},
	}, "", 30)
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "tiny") && !strings.Contains(l, "#") {
			t.Error("non-zero value rendered with no bar")
		}
	}
}

func TestBarChartHandlesAllZero(t *testing.T) {
	out := BarChart("z", []string{"L"}, []Series{{Name: "s", Values: []float64{0}}}, "", 10)
	if !strings.Contains(out, "0.00") {
		t.Error("zero chart should still render values")
	}
}

func TestRenderCompares(t *testing.T) {
	out := RenderCompares("cmp", []Compare{
		{Item: "speedup", Paper: "2.15x", Measured: "2.17x", Note: "TX2"},
	})
	for _, want := range []string{"cmp", "speedup", "2.15x", "2.17x", "TX2"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q", want)
		}
	}
}

func TestAddRowMixedTypes(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.AddRow(42, 3.14159, "str")
	if tab.Rows[0][0] != "42" || tab.Rows[0][1] != "3.14" || tab.Rows[0][2] != "str" {
		t.Fatalf("row %v", tab.Rows[0])
	}
}
