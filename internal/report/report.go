// Package report renders experiment results as aligned text tables,
// ASCII bar charts, and paper-vs-measured comparison blocks — the
// output layer of the table/figure regeneration harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned monospace text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// Series is one labelled sequence for a bar chart.
type Series struct {
	Name   string
	Values []float64
}

// BarChart renders grouped horizontal bars, one row per label, one bar
// per series — the textual stand-in for the paper's figures.
func BarChart(title string, labels []string, series []Series, unit string, width int) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	for li, label := range labels {
		b.WriteString(label + "\n")
		for _, s := range series {
			if li >= len(s.Values) {
				continue
			}
			v := s.Values[li]
			bars := int(v / maxV * float64(width))
			if bars < 1 && v > 0 {
				bars = 1
			}
			fmt.Fprintf(&b, "  %-*s %s %.2f%s\n", nameW, s.Name, strings.Repeat("#", bars), v, unit)
		}
	}
	return b.String()
}

// Compare is one paper-vs-measured record.
type Compare struct {
	Item     string
	Paper    string
	Measured string
	Note     string
}

// RenderCompares renders a paper-vs-measured block.
func RenderCompares(title string, cs []Compare) string {
	t := &Table{Title: title, Headers: []string{"item", "paper", "measured", "note"}}
	for _, c := range cs {
		t.AddRow(c.Item, c.Paper, c.Measured, c.Note)
	}
	return t.Render()
}
