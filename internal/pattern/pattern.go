// Package pattern implements the kernel-pattern machinery of R-TOSS
// (paper §IV.B): enumeration of all n-choose-k pattern masks over a 3×3
// kernel, the adjacency filter that keeps the masks semi-structured, the
// L2-norm "most used pattern" selection experiment over random kernels
// in [-1, 1], and the canonical pattern dictionaries (2EP/3EP/4EP/5EP)
// used by the pruning frameworks.
//
// A Mask is a 9-bit set over kernel positions (row-major, bit r*3+c).
// Set bits mark weights that are KEPT; clear bits are pruned to zero.
package pattern

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// KernelSize is the spatial size of kernels the patterns apply to.
const KernelSize = 3

// KernelArea is the number of weights in a pattern-prunable kernel.
const KernelArea = KernelSize * KernelSize

// Mask is a set of kept positions in a 3×3 kernel, one bit per position
// in row-major order (bit 0 = top-left, bit 8 = bottom-right).
type Mask uint16

// FromPositions builds a mask from (row, col) positions.
func FromPositions(pos ...[2]int) Mask {
	var m Mask
	for _, p := range pos {
		if p[0] < 0 || p[0] >= KernelSize || p[1] < 0 || p[1] >= KernelSize {
			panic(fmt.Sprintf("pattern: position %v out of 3x3 bounds", p))
		}
		m |= 1 << (p[0]*KernelSize + p[1])
	}
	return m
}

// Count returns the number of kept positions (the "entries" of the pattern).
func (m Mask) Count() int {
	n := 0
	for b := Mask(1); b < 1<<KernelArea; b <<= 1 {
		if m&b != 0 {
			n++
		}
	}
	return n
}

// Has reports whether position (r, c) is kept.
func (m Mask) Has(r, c int) bool {
	return m&(1<<(r*KernelSize+c)) != 0
}

// Positions returns the kept (row, col) positions in row-major order.
func (m Mask) Positions() [][2]int {
	var out [][2]int
	for r := 0; r < KernelSize; r++ {
		for c := 0; c < KernelSize; c++ {
			if m.Has(r, c) {
				out = append(out, [2]int{r, c})
			}
		}
	}
	return out
}

// String renders the mask as a 3-line grid, "#" for kept, "." for pruned.
func (m Mask) String() string {
	var b strings.Builder
	for r := 0; r < KernelSize; r++ {
		for c := 0; c < KernelSize; c++ {
			if m.Has(r, c) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if r != KernelSize-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// HasAdjacentPair reports whether at least two kept positions are
// 4-neighbours (share an edge). This is the paper's first filtering
// criterion: "we drop all patterns without adjacent non-zero weights",
// which keeps the surviving masks semi-structured.
func (m Mask) HasAdjacentPair() bool {
	for r := 0; r < KernelSize; r++ {
		for c := 0; c < KernelSize; c++ {
			if !m.Has(r, c) {
				continue
			}
			if c+1 < KernelSize && m.Has(r, c+1) {
				return true
			}
			if r+1 < KernelSize && m.Has(r+1, c) {
				return true
			}
		}
	}
	return false
}

// IsConnected reports whether the kept positions form a single
// 4-connected component. Stricter than HasAdjacentPair; used for
// ablation studies of the filtering criterion.
func (m Mask) IsConnected() bool {
	pos := m.Positions()
	if len(pos) == 0 {
		return false
	}
	visited := make(map[[2]int]bool, len(pos))
	stack := [][2]int{pos[0]}
	visited[pos[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
			q := [2]int{p[0] + d[0], p[1] + d[1]}
			if q[0] < 0 || q[0] >= KernelSize || q[1] < 0 || q[1] >= KernelSize {
				continue
			}
			if m.Has(q[0], q[1]) && !visited[q] {
				visited[q] = true
				stack = append(stack, q)
			}
		}
	}
	return len(visited) == len(pos)
}

// MaskedL2 returns the L2 norm of the kernel restricted to kept positions.
// kernel must have length 9 (row-major 3×3).
func (m Mask) MaskedL2(kernel []float32) float64 {
	if len(kernel) != KernelArea {
		panic(fmt.Sprintf("pattern: MaskedL2 needs %d weights, got %d", KernelArea, len(kernel)))
	}
	s := 0.0
	for i, v := range kernel {
		if m&(1<<i) != 0 {
			s += float64(v) * float64(v)
		}
	}
	return math.Sqrt(s)
}

// Apply zeroes the pruned positions of a row-major 3×3 kernel in place.
func (m Mask) Apply(kernel []float32) {
	if len(kernel) != KernelArea {
		panic(fmt.Sprintf("pattern: Apply needs %d weights, got %d", KernelArea, len(kernel)))
	}
	for i := range kernel {
		if m&(1<<i) == 0 {
			kernel[i] = 0
		}
	}
}

// ApplyTensor applies the mask to a 3×3 tensor in place.
func (m Mask) ApplyTensor(t *tensor.Tensor) {
	if t.Rank() != 2 || t.Dim(0) != KernelSize || t.Dim(1) != KernelSize {
		panic("pattern: ApplyTensor requires a 3x3 tensor")
	}
	m.Apply(t.Data)
}

// Binomial returns n choose k (equation (1) of the paper).
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// Enumerate returns all masks with exactly `entries` kept positions,
// in ascending bit order. len(result) == Binomial(9, entries).
func Enumerate(entries int) []Mask {
	if entries < 0 || entries > KernelArea {
		panic(fmt.Sprintf("pattern: entries %d out of range [0,%d]", entries, KernelArea))
	}
	var out []Mask
	for m := Mask(0); m < 1<<KernelArea; m++ {
		if m.Count() == entries {
			out = append(out, m)
		}
	}
	return out
}

// Candidates returns the masks with `entries` kept positions that
// survive the adjacency filter (criterion 1 of §IV.B).
func Candidates(entries int) []Mask {
	var out []Mask
	for _, m := range Enumerate(entries) {
		if m.HasAdjacentPair() {
			out = append(out, m)
		}
	}
	return out
}

// Usage records how often a mask was the best fit in the selection
// experiment.
type Usage struct {
	Mask  Mask
	Count int
	Frac  float64
}

// UsageExperiment implements criterion 2 of §IV.B: draw `kernels` random
// 3×3 kernels with weights uniform in [-1, 1], pick for each the
// candidate mask maximising the masked L2 norm, and return the usage
// statistics sorted most-used first (ties broken by mask value for
// determinism).
func UsageExperiment(entries, kernels int, r *rng.RNG) []Usage {
	cands := Candidates(entries)
	if len(cands) == 0 {
		return nil
	}
	counts := make(map[Mask]int, len(cands))
	kernel := make([]float32, KernelArea)
	for i := 0; i < kernels; i++ {
		for j := range kernel {
			kernel[j] = float32(r.Range(-1, 1))
		}
		best, _ := BestFit(kernel, cands)
		counts[best]++
	}
	out := make([]Usage, 0, len(cands))
	for _, m := range cands {
		out = append(out, Usage{Mask: m, Count: counts[m], Frac: float64(counts[m]) / float64(kernels)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// BestFit returns the mask among candidates maximising the masked L2
// norm of kernel, and that norm. Ties are broken toward the smaller
// mask value for determinism. It panics if candidates is empty.
func BestFit(kernel []float32, candidates []Mask) (Mask, float64) {
	if len(candidates) == 0 {
		panic("pattern: BestFit with no candidate masks")
	}
	best := candidates[0]
	bestNorm := -1.0
	for _, m := range candidates {
		n := m.MaskedL2(kernel)
		if n > bestNorm || (n == bestNorm && m < best) {
			best = m
			bestNorm = n
		}
	}
	return best, bestNorm
}

// Dictionary is a pruning pattern dictionary: the pre-selected masks a
// framework may assign to kernels at inference time.
type Dictionary struct {
	Entries int    // kept weights per kernel (2 for 2EP, 3 for 3EP, ...)
	Masks   []Mask // selected masks, most-used first
}

// Sparsity returns the fraction of weights a dictionary mask removes
// from a 3×3 kernel (e.g. 7/9 for 2EP).
func (d Dictionary) Sparsity() float64 {
	return 1 - float64(d.Entries)/float64(KernelArea)
}

// selection sizes for the canonical dictionaries. The paper reduces the
// pattern count "from experiments ... to 21 patterns" across its 2EP and
// 3EP variants; running UsageExperiment with 200k kernels shows the top
// 9 two-entry and top 12 three-entry masks cover >97% of best-fit
// assignments, and 9 + 12 = 21 matches the paper's count. The 4EP size
// follows PatDNN's published 6-or-8-pattern dictionaries (we keep 8);
// 5EP keeps 8 for symmetry in the sensitivity study.
var canonicalSizes = map[int]int{2: 9, 3: 12, 4: 8, 5: 8}

// canonicalSeed fixes the selection experiment so dictionaries are
// identical across runs and platforms.
const canonicalSeed = 0x52544f5353 // "RTOSS"

// canonicalKernels is the number of random kernels drawn when selecting
// the canonical dictionaries.
const canonicalKernels = 200000

var (
	dictMu    sync.Mutex
	dictCache = map[int]Dictionary{}
)

// NewDictionary returns the canonical dictionary for the given entry
// count (2, 3, 4 or 5), computing and caching it on first use. It is
// safe for concurrent use (the execution engine compiles layers against
// these dictionaries from worker goroutines).
func NewDictionary(entries int) Dictionary {
	dictMu.Lock()
	defer dictMu.Unlock()
	if d, ok := dictCache[entries]; ok {
		return d
	}
	size, ok := canonicalSizes[entries]
	if !ok {
		panic(fmt.Sprintf("pattern: no canonical dictionary for %d-entry patterns", entries))
	}
	usage := UsageExperiment(entries, canonicalKernels, rng.New(canonicalSeed))
	if len(usage) < size {
		size = len(usage)
	}
	masks := make([]Mask, size)
	for i := 0; i < size; i++ {
		masks[i] = usage[i].Mask
	}
	d := Dictionary{Entries: entries, Masks: masks}
	dictCache[entries] = d
	return d
}

// CanonicalPatternCount returns the total number of patterns across the
// R-TOSS 2EP and 3EP dictionaries (the paper's "21 pre-defined kernel
// patterns at inference").
func CanonicalPatternCount() int {
	return len(NewDictionary(2).Masks) + len(NewDictionary(3).Masks)
}
