package pattern

import (
	"testing"
	"testing/quick"

	"rtoss/internal/rng"
)

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{9, 0, 1}, {9, 1, 9}, {9, 2, 36}, {9, 3, 84}, {9, 4, 126},
		{9, 5, 126}, {9, 8, 9}, {9, 9, 1}, {9, 10, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d)=%d want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestEnumerateCounts(t *testing.T) {
	// Equation (1) of the paper: n(k) = C(9, k).
	for k := 0; k <= 9; k++ {
		if got := len(Enumerate(k)); got != Binomial(9, k) {
			t.Errorf("Enumerate(%d) has %d masks, want C(9,%d)=%d", k, got, k, Binomial(9, k))
		}
	}
}

func TestFromPositionsAndHas(t *testing.T) {
	m := FromPositions([2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2})
	if m.Count() != 3 {
		t.Fatalf("Count=%d", m.Count())
	}
	if !m.Has(0, 0) || !m.Has(1, 1) || !m.Has(2, 2) || m.Has(0, 1) {
		t.Fatal("Has mismatch")
	}
	pos := m.Positions()
	if len(pos) != 3 || pos[0] != [2]int{0, 0} || pos[2] != [2]int{2, 2} {
		t.Fatalf("Positions %v", pos)
	}
}

func TestAdjacentPairCount2EP(t *testing.T) {
	// The 3x3 grid graph has exactly 12 edges, so exactly 12 two-entry
	// masks survive the adjacency filter.
	if got := len(Candidates(2)); got != 12 {
		t.Fatalf("2EP candidates=%d want 12", got)
	}
}

func TestConnectedTriples(t *testing.T) {
	// Connected 3-subsets of the 3x3 grid are paths centred at a vertex:
	// sum over vertices of C(deg,2) = 4*1 + 4*3 + 6 = 22.
	n := 0
	for _, m := range Enumerate(3) {
		if m.IsConnected() {
			n++
		}
	}
	if n != 22 {
		t.Fatalf("connected 3EP masks=%d want 22", n)
	}
}

func TestHasAdjacentPairExamples(t *testing.T) {
	diag := FromPositions([2]int{0, 0}, [2]int{1, 1})
	if diag.HasAdjacentPair() {
		t.Fatal("diagonal pair is not 4-adjacent")
	}
	horiz := FromPositions([2]int{0, 0}, [2]int{0, 1})
	if !horiz.HasAdjacentPair() {
		t.Fatal("horizontal pair is 4-adjacent")
	}
	// One adjacent pair plus an isolated corner still passes the paper's
	// (weak) criterion but is not fully connected.
	mixed := FromPositions([2]int{0, 0}, [2]int{0, 1}, [2]int{2, 2})
	if !mixed.HasAdjacentPair() {
		t.Fatal("mixed mask has an adjacent pair")
	}
	if mixed.IsConnected() {
		t.Fatal("mixed mask is not fully connected")
	}
}

func TestIsConnectedSingle(t *testing.T) {
	if !FromPositions([2]int{1, 1}).IsConnected() {
		t.Fatal("single cell should count as connected")
	}
	if Mask(0).IsConnected() {
		t.Fatal("empty mask is not connected")
	}
}

func TestMaskedL2(t *testing.T) {
	kernel := []float32{3, 0, 0, 4, 0, 0, 0, 0, 0}
	m := FromPositions([2]int{0, 0}, [2]int{1, 0})
	if got := m.MaskedL2(kernel); got != 5 {
		t.Fatalf("MaskedL2=%v want 5", got)
	}
	empty := Mask(0)
	if empty.MaskedL2(kernel) != 0 {
		t.Fatal("empty mask should have zero norm")
	}
}

func TestApplyKeepsMaskedZeroesRest(t *testing.T) {
	kernel := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	m := FromPositions([2]int{0, 0}, [2]int{0, 1}, [2]int{1, 1})
	m.Apply(kernel)
	want := []float32{1, 2, 0, 0, 5, 0, 0, 0, 0}
	for i := range want {
		if kernel[i] != want[i] {
			t.Fatalf("Apply got %v want %v", kernel, want)
		}
	}
}

func TestApplyIdempotent(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 50; trial++ {
		kernel := make([]float32, 9)
		for i := range kernel {
			kernel[i] = float32(r.Range(-1, 1))
		}
		m := Mask(r.Intn(512))
		m.Apply(kernel)
		before := append([]float32(nil), kernel...)
		m.Apply(kernel)
		for i := range kernel {
			if kernel[i] != before[i] {
				t.Fatal("Apply is not idempotent")
			}
		}
	}
}

func TestBestFitPicksLargestMagnitudes(t *testing.T) {
	// With the two largest |w| adjacent, the 2EP best fit must keep them.
	kernel := []float32{0.9, 0.8, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	best, norm := BestFit(kernel, Candidates(2))
	want := FromPositions([2]int{0, 0}, [2]int{0, 1})
	if best != want {
		t.Fatalf("best fit\n%v\nwant\n%v", best, want)
	}
	if norm <= 0 {
		t.Fatalf("norm %v", norm)
	}
}

func TestBestFitDeterministicTieBreak(t *testing.T) {
	kernel := make([]float32, 9) // all zeros: every mask ties at 0
	a, _ := BestFit(kernel, Candidates(2))
	b, _ := BestFit(kernel, Candidates(2))
	if a != b {
		t.Fatal("tie-break not deterministic")
	}
}

func TestUsageExperimentSumsToOne(t *testing.T) {
	usage := UsageExperiment(2, 5000, rng.New(42))
	total := 0
	for _, u := range usage {
		total += u.Count
	}
	if total != 5000 {
		t.Fatalf("usage counts sum to %d", total)
	}
	for i := 1; i < len(usage); i++ {
		if usage[i].Count > usage[i-1].Count {
			t.Fatal("usage not sorted descending")
		}
	}
}

func TestUsageExperimentDeterministic(t *testing.T) {
	a := UsageExperiment(3, 2000, rng.New(7))
	b := UsageExperiment(3, 2000, rng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("usage experiment not deterministic")
		}
	}
}

func TestCanonicalDictionarySizes(t *testing.T) {
	if got := len(NewDictionary(2).Masks); got != 9 {
		t.Fatalf("2EP dictionary size %d want 9", got)
	}
	if got := len(NewDictionary(3).Masks); got != 12 {
		t.Fatalf("3EP dictionary size %d want 12", got)
	}
	// The paper's headline count: 21 pre-defined patterns at inference.
	if got := CanonicalPatternCount(); got != 21 {
		t.Fatalf("canonical pattern count %d want 21", got)
	}
}

func TestCanonicalDictionaryEntryCounts(t *testing.T) {
	for _, entries := range []int{2, 3, 4, 5} {
		d := NewDictionary(entries)
		if d.Entries != entries {
			t.Fatalf("dictionary entries %d", d.Entries)
		}
		for _, m := range d.Masks {
			if m.Count() != entries {
				t.Fatalf("%d-entry dictionary contains mask with %d entries", entries, m.Count())
			}
			if !m.HasAdjacentPair() {
				t.Fatalf("dictionary mask fails adjacency filter:\n%v", m)
			}
		}
	}
}

func TestDictionarySparsity(t *testing.T) {
	if s := NewDictionary(2).Sparsity(); s < 0.77 || s > 0.78 {
		t.Fatalf("2EP sparsity %v want 7/9", s)
	}
	if s := NewDictionary(3).Sparsity(); s < 0.66 || s > 0.67 {
		t.Fatalf("3EP sparsity %v want 6/9", s)
	}
}

func TestDictionaryCached(t *testing.T) {
	a := NewDictionary(2)
	b := NewDictionary(2)
	if &a.Masks[0] != &b.Masks[0] {
		t.Fatal("dictionary should be cached")
	}
}

func TestMaskString(t *testing.T) {
	m := FromPositions([2]int{0, 0}, [2]int{0, 1})
	want := "##.\n...\n..."
	if m.String() != want {
		t.Fatalf("String:\n%q\nwant\n%q", m.String(), want)
	}
}

func TestQuickApplyReducesOrKeepsNorm(t *testing.T) {
	f := func(raw [9]int8, maskBits uint16) bool {
		kernel := make([]float32, 9)
		for i, v := range raw {
			kernel[i] = float32(v) / 128
		}
		m := Mask(maskBits & 0x1ff)
		masked := m.MaskedL2(kernel)
		full := Mask(0x1ff).MaskedL2(kernel)
		return masked <= full+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBestFitIsArgmax(t *testing.T) {
	cands := Candidates(3)
	f := func(raw [9]int8) bool {
		kernel := make([]float32, 9)
		for i, v := range raw {
			kernel[i] = float32(v) / 128
		}
		best, norm := BestFit(kernel, cands)
		for _, m := range cands {
			if m.MaskedL2(kernel) > norm+1e-9 {
				return false
			}
		}
		return best.Count() == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickApplyZeroesComplement(t *testing.T) {
	f := func(raw [9]int8, maskBits uint16) bool {
		kernel := make([]float32, 9)
		for i, v := range raw {
			kernel[i] = float32(v)/128 + 0.001 // keep away from exact zero
		}
		m := Mask(maskBits & 0x1ff)
		m.Apply(kernel)
		for i := range kernel {
			kept := m&(1<<i) != 0
			if kept && kernel[i] == 0 {
				return false
			}
			if !kept && kernel[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBestFit3EP(b *testing.B) {
	r := rng.New(3)
	kernel := make([]float32, 9)
	for i := range kernel {
		kernel[i] = float32(r.Range(-1, 1))
	}
	d := NewDictionary(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BestFit(kernel, d.Masks)
	}
}

func BenchmarkUsageExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = UsageExperiment(2, 1000, rng.New(uint64(i)))
	}
}
