package engine

import (
	"testing"

	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/nn"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

func tinyDetector(t testing.TB, seed uint64) *nn.Model {
	t.Helper()
	b := nn.NewBuilder("tinydet", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	c3 := b.C3("c3", x, 8, 8, 1, true, nn.SiLU)
	x = b.ConvBNAct("down", c3, 8, 16, 3, 2, 1, nn.SiLU)
	up := b.Upsample("up", x, 2)
	cat := b.Concat("cat", up, c3)
	x = b.ConvBNAct("fuse", cat, 24, 16, 1, 1, 0, nn.SiLU)
	head := b.Conv("head", x, 16, 14, 1, 1, 0, true)
	b.Detect("detect", head)
	m := b.MustBuild()
	m.InitWeights(seed)
	return m
}

func randInput(r *rng.RNG, c, h, w int) *tensor.Tensor {
	in := tensor.New(1, c, h, w)
	for i := range in.Data {
		in.Data[i] = float32(r.Range(-1, 1))
	}
	return in
}

func TestForwardShapes(t *testing.T) {
	m := tinyDetector(t, 1)
	in := randInput(rng.New(2), 3, 32, 32)
	outs, err := Forward(m, in)
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := m.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	for id, out := range outs {
		if out == nil {
			t.Fatalf("layer %d has no output", id)
		}
		want := shapes[id]
		if out.Dim(1) != want.C || out.Dim(2) != want.H || out.Dim(3) != want.W {
			t.Fatalf("layer %d (%s) output %v, shape inference says %v", id, m.Layers[id].Name, out.Shape(), want)
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := tinyDetector(t, 5)
	in := randInput(rng.New(9), 3, 32, 32)
	a, err := Output(m, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Output(m, in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 0) {
		t.Fatal("forward pass not deterministic")
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	m := tinyDetector(t, 1)
	if _, err := Forward(m, tensor.New(1, 5, 32, 32)); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	if _, err := Forward(m, tensor.New(3, 32, 32)); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act  nn.Activation
		in   float32
		want float32
	}{
		{nn.ReLU, -1, 0},
		{nn.ReLU, 2, 2},
		{nn.LeakyReLU, -1, -0.1},
		{nn.NoAct, -3, -3},
	}
	for _, c := range cases {
		if got := applyAct(c.in, c.act); got != c.want {
			t.Errorf("act %v(%v) = %v want %v", c.act, c.in, got, c.want)
		}
	}
	// SiLU(0) = 0, sigmoid(0) = 0.5.
	if applyAct(0, nn.SiLU) != 0 {
		t.Error("SiLU(0) != 0")
	}
	if applyAct(0, nn.Sigmoid) != 0.5 {
		t.Error("sigmoid(0) != 0.5")
	}
}

func TestPruningPerturbsOutputModestly(t *testing.T) {
	// R-TOSS pattern pruning keeps the dominant weights, so the output
	// delta must be well below 100% relative error — and much smaller
	// than zeroing the same layers completely.
	base := tinyDetector(t, 7)
	in := randInput(rng.New(11), 3, 32, 32)

	pruned := base.Clone()
	if _, err := core.NewVariant(3).Prune(pruned); err != nil {
		t.Fatal(err)
	}
	delta, err := OutputDelta(base, pruned, in)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatal("pruning should perturb outputs")
	}
	if delta > 1.2 {
		t.Fatalf("3EP output delta %.3f unreasonably large", delta)
	}

	// Destroying the model entirely must be much worse.
	dead := base.Clone()
	for _, l := range dead.ConvLayers() {
		l.Weight.Zero()
	}
	deadDelta, err := OutputDelta(base, dead, in)
	if err != nil {
		t.Fatal(err)
	}
	if deadDelta <= delta {
		t.Fatalf("zeroed model delta %.3f should exceed pruned delta %.3f", deadDelta, delta)
	}
}

func TestPatternPruningGentlerThanFilterPruning(t *testing.T) {
	// At comparable sparsity, pattern pruning (keeps top weights per
	// kernel) must perturb real activations less than filter pruning
	// (removes whole filters) — the activation-space counterpart of the
	// paper's accuracy argument.
	base := tinyDetector(t, 13)
	in := randInput(rng.New(17), 3, 32, 32)

	pat := base.Clone()
	if _, err := core.NewVariant(3).Prune(pat); err != nil { // 67% sparsity
		t.Fatal(err)
	}
	filt := base.Clone()
	pf := baselines.NewPruningFilters()
	pf.FilterFrac = 0.67 // matched sparsity
	if _, err := pf.Prune(filt); err != nil {
		t.Fatal(err)
	}
	dPat, err := OutputDelta(base, pat, in)
	if err != nil {
		t.Fatal(err)
	}
	dFilt, err := OutputDelta(base, filt, in)
	if err != nil {
		t.Fatal(err)
	}
	if dPat >= dFilt {
		t.Errorf("pattern delta %.4f should be below filter delta %.4f at matched sparsity", dPat, dFilt)
	}
}

func TestGlobalPoolAndLinear(t *testing.T) {
	b := nn.NewBuilder("cls", 2, 4, 4, 3)
	x := b.Input()
	x = b.GlobalPool("gap", x)
	x = b.Linear("fc", x, 2, 3, true)
	b.Detect("out", x)
	m := b.MustBuild()
	m.InitWeights(1)
	// Set deterministic weights: identity-ish.
	fc := m.Layers[2]
	for i := range fc.LinW.Data {
		fc.LinW.Data[i] = 0
	}
	fc.LinW.Set(1, 0, 0) // out0 = mean(channel0)
	fc.LinW.Set(2, 1, 1) // out1 = 2*mean(channel1)
	for i := range fc.LinB {
		fc.LinB[i] = 0
	}
	in := tensor.New(1, 2, 4, 4)
	for i := 0; i < 16; i++ {
		in.Data[i] = 1 // channel 0 all ones
		in.Data[16+i] = 3
	}
	out, err := Output(m, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 1, 0, 0) != 6 || out.At(0, 2, 0, 0) != 0 {
		t.Fatalf("linear output wrong: %v", out.Data)
	}
}

func TestResidualAddExecutes(t *testing.T) {
	b := nn.NewBuilder("res", 1, 4, 4, 1)
	x := b.Input()
	c := b.Conv("c", x, 1, 1, 1, 1, 0, false)
	sum := b.Add("add", x, c)
	b.Detect("out", sum)
	m := b.MustBuild()
	m.InitWeights(1)
	m.Layers[1].Weight.Data[0] = 2 // conv doubles the input
	in := tensor.Full(3, 1, 1, 4, 4)
	out, err := Output(m, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v != 9 { // 3 + 2*3
			t.Fatalf("residual output %v want 9", v)
		}
	}
}

func BenchmarkForwardTinyDetector(b *testing.B) {
	m := tinyDetector(b, 3)
	in := randInput(rng.New(4), 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Output(m, in); err != nil {
			b.Fatal(err)
		}
	}
}
