package engine

import (
	"strings"
	"sync"
	"testing"

	"rtoss/internal/baselines"
	"rtoss/internal/core"
	"rtoss/internal/nn"
	"rtoss/internal/prune"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// maxAbsDiff returns the largest elementwise |a-b|.
func maxAbsDiff(t *testing.T, a, b *tensor.Tensor) float64 {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	var m float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestSparseModesMatchDense prunes the tiny detector with every
// framework lineup entry and checks that the sparse and auto engines
// reproduce the dense engine's outputs within 1e-5.
func TestSparseModesMatchDense(t *testing.T) {
	pruners := []prune.Pruner{core.NewVariant(3), core.NewVariant(2)}
	pruners = append(pruners, baselines.All()...)
	for _, p := range pruners {
		t.Run(p.Name(), func(t *testing.T) {
			m := tinyDetector(t, 21)
			if _, err := p.Prune(m); err != nil {
				t.Fatal(err)
			}
			in := randInput(rng.New(22), 3, 32, 32)
			dense, err := New(m, Options{Mode: ModeDense})
			if err != nil {
				t.Fatal(err)
			}
			want, err := dense.Output(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []Mode{ModeSparse, ModeAuto} {
				e, err := New(m, Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Output(in)
				if err != nil {
					t.Fatal(err)
				}
				if d := maxAbsDiff(t, got, want); d > 1e-5 {
					t.Errorf("%v engine diverges from dense by %g", mode, d)
				}
			}
		})
	}
}

// TestAutoDispatchUsesRecordedStructure checks that pruning records the
// per-layer structure and that auto mode compiles sparse kernels only
// for pruned layers.
func TestAutoDispatchUsesRecordedStructure(t *testing.T) {
	m := tinyDetector(t, 31)
	unpruned, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p, c := unpruned.SparseLayers(); p != 0 || c != 0 {
		t.Fatalf("unpruned model compiled %d pattern + %d csr layers, want none", p, c)
	}
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	recorded := 0
	for _, l := range m.Layers {
		if l.Structure == nn.SparsityPattern {
			recorded++
		}
	}
	if recorded == 0 {
		t.Fatal("pruning recorded no per-layer structure")
	}
	pruned, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, c := pruned.SparseLayers()
	if p == 0 {
		t.Fatal("auto mode compiled no pattern-sparse layers on a pattern-pruned model")
	}
	if p+c > recorded {
		t.Fatalf("auto compiled %d sparse layers but only %d are pruned", p+c, recorded)
	}
}

// TestConcurrentForward hammers one shared engine from many goroutines
// (and with a multi-worker pool) — the go test -race target for the
// wavefront scheduler and the per-run arenas.
func TestConcurrentForward(t *testing.T) {
	m := tinyDetector(t, 41)
	if _, err := core.NewVariant(2).Prune(m); err != nil {
		t.Fatal(err)
	}
	e, err := New(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(43), 3, 32, 32)
	want, err := e.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	outs := make([]*tensor.Tensor, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				outs[g], errs[g] = e.Output(in)
				return
			}
			all, err := e.Forward(in)
			if err == nil {
				outs[g] = all[len(all)-1]
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if d := maxAbsDiff(t, outs[g], want); d != 0 {
			t.Fatalf("goroutine %d output differs by %g", g, d)
		}
	}
}

// TestConcurrentErrorPropagates checks that a failing layer inside the
// worker pool surfaces as an error, not a crash or a hang.
func TestConcurrentErrorPropagates(t *testing.T) {
	m := tinyDetector(t, 47)
	// Corrupt a mid-network conv so its kernel panics on shape checks.
	for _, l := range m.Layers {
		if l.Kind == nn.Conv {
			l.Weight = tensor.New(l.OutC, l.InC/l.Group+1, l.KH, l.KW)
			break
		}
	}
	e, err := New(m, Options{Mode: ModeDense, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Output(randInput(rng.New(1), 3, 32, 32)); err == nil {
		t.Fatal("expected corrupted layer to error")
	}
}

// TestUpsampleExactScaling covers the Upsample scale bug: the old
// doubling loop silently produced 4x output for scale=3.
func TestUpsampleExactScaling(t *testing.T) {
	for _, scale := range []int{1, 2, 3, 4} {
		b := nn.NewBuilder("up", 1, 4, 4, 1)
		x := b.Input()
		x = b.Upsample("up", x, scale)
		b.Detect("out", x)
		m := b.MustBuild()
		in := randInput(rng.New(uint64(scale)), 1, 4, 4)
		out, err := Output(m, in)
		if err != nil {
			t.Fatal(err)
		}
		shapes, err := m.InferShapes()
		if err != nil {
			t.Fatal(err)
		}
		want := shapes[1]
		if out.Dim(2) != want.H || out.Dim(3) != want.W {
			t.Fatalf("scale %d: engine output %v, shape inference says %dx%d", scale, out.Shape(), want.H, want.W)
		}
		for y := 0; y < out.Dim(2); y++ {
			for x := 0; x < out.Dim(3); x++ {
				if got, want := out.At(0, 0, y, x), in.At(0, 0, y/scale, x/scale); got != want {
					t.Fatalf("scale %d: out[%d][%d] = %g, want %g", scale, y, x, got, want)
				}
			}
		}
	}
}

// TestUpsampleInvalidScaleErrors checks negative scales error instead
// of silently looping.
func TestUpsampleInvalidScaleErrors(t *testing.T) {
	b := nn.NewBuilder("up", 1, 4, 4, 1)
	x := b.Input()
	x = b.Upsample("up", x, -3)
	b.Detect("out", x)
	m := b.MustBuild()
	_, err := Output(m, randInput(rng.New(3), 1, 4, 4))
	if err == nil || !strings.Contains(err.Error(), "invalid scale") {
		t.Fatalf("expected invalid-scale error, got %v", err)
	}
}

// TestOutputMatchesForward checks the arena-recycling Output path
// returns exactly what the retain-everything Forward path computes.
func TestOutputMatchesForward(t *testing.T) {
	m := tinyDetector(t, 53)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	e, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(54), 3, 32, 32)
	all, err := e.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, out, all[len(all)-1]); d != 0 {
		t.Fatalf("Output differs from Forward's final tensor by %g", d)
	}
}
