package engine

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"rtoss/internal/core"
	"rtoss/internal/nn"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// csrDetector returns the tiny detector pruned into an off-dictionary
// unstructured layout, so sparse compilation must take the CSR path.
func csrDetector(t testing.TB, seed uint64) *nn.Model {
	t.Helper()
	m := tinyDetector(t, seed)
	for _, l := range m.ConvLayers() {
		ks := l.KH * l.KW
		for k := 0; k < len(l.Weight.Data)/ks; k++ {
			kernel := l.Weight.Data[k*ks : (k+1)*ks]
			// Keep the first 6 taps of 3x3 kernels: a 6-entry mask is in
			// no canonical dictionary (2..5 entries), forcing CSR.
			for i := range kernel {
				if i >= 6 {
					kernel[i] = 0
				}
			}
		}
		l.Structure = nn.SparsityUnstructured
	}
	return m
}

// TestForwardBatchMatchesSingle checks the batched forward against N
// independent single-image passes for every kernel path: dense,
// pattern-grouped and CSR.
func TestForwardBatchMatchesSingle(t *testing.T) {
	cases := []struct {
		name  string
		model func(testing.TB) *nn.Model
		mode  Mode
		wantP bool // pattern layers expected
		wantC bool // CSR layers expected
	}{
		{"dense", func(tb testing.TB) *nn.Model { return tinyDetector(tb, 61) }, ModeDense, false, false},
		{"pattern", func(tb testing.TB) *nn.Model {
			m := tinyDetector(tb, 62)
			if _, err := core.NewVariant(3).Prune(m); err != nil {
				tb.Fatal(err)
			}
			return m
		}, ModeSparse, true, false},
		{"csr", func(tb testing.TB) *nn.Model { return csrDetector(tb, 63) }, ModeSparse, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := c.model(t)
			p, err := Compile(m, Options{Mode: c.mode, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			pl, cl := p.SparseLayers()
			if c.wantP && pl == 0 {
				t.Fatal("expected pattern-compiled layers, got none")
			}
			if c.wantC && cl == 0 {
				t.Fatal("expected CSR-compiled layers, got none")
			}
			const n = 5
			r := rng.New(64)
			inputs := make([]*tensor.Tensor, n)
			for i := range inputs {
				inputs[i] = randInput(r, 3, 32, 32)
			}
			batched, err := p.ForwardBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched) != n {
				t.Fatalf("ForwardBatch returned %d outputs for %d inputs", len(batched), n)
			}
			for i, in := range inputs {
				want, err := p.Output(in)
				if err != nil {
					t.Fatal(err)
				}
				if d := maxAbsDiff(t, batched[i], want); d > 1e-5 {
					t.Errorf("image %d: batched output diverges from single forward by %g", i, d)
				}
			}
		})
	}
}

// TestForwardBatchInputShapes checks rank-3 inputs are accepted and
// mismatched or empty batches error instead of panicking.
func TestForwardBatchInputShapes(t *testing.T) {
	m := tinyDetector(t, 71)
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(72)
	chw := randInput(r, 3, 32, 32).Reshape(3, 32, 32)
	outs, err := p.ForwardBatch([]*tensor.Tensor{chw, chw})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || maxAbsDiff(t, outs[0], outs[1]) != 0 {
		t.Fatal("identical rank-3 inputs should produce identical outputs")
	}
	if _, err := p.ForwardBatch(nil); err == nil {
		t.Fatal("empty batch should error")
	}
	if _, err := p.ForwardBatch([]*tensor.Tensor{chw, tensor.New(3, 16, 16)}); err == nil {
		t.Fatal("mismatched image shapes should error")
	}
	if _, err := p.ForwardBatch([]*tensor.Tensor{tensor.New(2, 3, 32, 32)}); err == nil {
		t.Fatal("multi-image tensor in a batch list should error")
	}
}

// TestProgramSharedConcurrently hammers one shared Program from many
// goroutines mixing single, retained and batched forwards — the go
// test -race target for the compile-once / run-many split.
func TestProgramSharedConcurrently(t *testing.T) {
	m := tinyDetector(t, 81)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{Mode: ModeSparse, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(82), 3, 32, 32)
	want, err := p.Output(in)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var got *tensor.Tensor
				var err error
				switch (g + i) % 3 {
				case 0:
					got, err = p.Output(in)
				case 1:
					var all []*tensor.Tensor
					if all, err = p.Forward(in); err == nil {
						got = all[len(all)-1]
					}
				default:
					var outs []*tensor.Tensor
					if outs, err = p.ForwardBatch([]*tensor.Tensor{in, in, in}); err == nil {
						got = outs[i%3]
					}
				}
				if err != nil {
					errs[g] = err
					return
				}
				if d := maxAbsDiff(t, got, want); d > 1e-5 {
					t.Errorf("goroutine %d iter %d: output differs by %g", g, i, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestRunStatePoolWarmsArena checks that repeated Output calls reuse
// pooled activation buffers instead of re-allocating per run.
func TestRunStatePoolWarmsArena(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items nondeterministically under -race")
	}
	m := tinyDetector(t, 91)
	p, err := Compile(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(92), 3, 32, 32)
	for i := 0; i < 3; i++ {
		if _, err := p.Output(in); err != nil {
			t.Fatal(err)
		}
	}
	rs := p.acquireRun(nil)
	defer p.releaseRun(rs)
	gets, reuses := rs.arena.Stats()
	if gets == 0 {
		t.Fatal("pooled run state was never used")
	}
	if reuses == 0 {
		t.Fatal("three sequential runs never reused an arena buffer")
	}
}

// TestConcurrentThroughputScales is the run-many payoff check: 8
// streams sharing one Program must beat single-stream throughput. The
// hard >=3x acceptance number is measured on real hardware by `rtoss
// bench`; here we assert conservative scaling to stay robust on small
// CI machines.
func TestConcurrentThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs >= 4 CPUs for meaningful scaling")
	}
	m := tinyDetector(t, 95)
	if _, err := core.NewVariant(3).Prune(m); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, Options{Mode: ModeSparse})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(96), 3, 64, 64)
	const perStream, streams = 20, 8
	run := func(concurrent int) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		for s := 0; s < concurrent; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perStream; i++ {
					if _, err := p.Output(in); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		return float64(concurrent*perStream) / time.Since(start).Seconds()
	}
	run(1) // warm-up
	single := run(1)
	multi := run(streams)
	t.Logf("throughput: single-stream %.1f img/s, %d streams %.1f img/s (%.2fx)",
		single, streams, multi, multi/single)
	if multi < 1.3*single {
		t.Errorf("8 shared streams reached only %.2fx single-stream throughput", multi/single)
	}
}
