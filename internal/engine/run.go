package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rtoss/internal/nn"
	"rtoss/internal/tensor"
)

// Forward runs the model on input (shape [N, InputC, H, W]) and returns
// every layer's output tensor, indexed by layer ID. H/W may differ from
// the model's nominal resolution as long as every conv output stays
// non-empty. Because every output is retained, Forward cannot recycle
// activation buffers; use Output when only the final tensor matters.
func (p *Program) Forward(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	return p.run(input, true, nil)
}

// Output runs the model and returns the final layer's tensor.
// Intermediate activations are recycled through a pooled per-run arena
// as soon as their last consumer has executed, so repeated calls reuse
// warm buffers instead of re-allocating them.
func (p *Program) Output(input *tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := p.run(input, false, nil)
	if err != nil {
		return nil, err
	}
	return outs[len(outs)-1], nil
}

// Heads runs the model and returns the detection-head tensors feeding
// the model's Detect sink, in the sink's input order (for YOLOv5s the
// P3/P4/P5 prediction maps; for RetinaNet the classification and
// regression maps). Intermediate activations are recycled like Output;
// the returned tensors are caller-owned. It errors if the model has no
// Detect layer.
func (p *Program) Heads(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(p.headIDs) == 0 {
		return nil, fmt.Errorf("engine: model %q has no detection heads", p.model.Name)
	}
	outs, err := p.run(input, false, p.headIDs)
	if err != nil {
		return nil, err
	}
	heads := make([]*tensor.Tensor, len(p.headIDs))
	for i, id := range p.headIDs {
		heads[i] = outs[id]
	}
	return heads, nil
}

// HeadsBatch stacks the inputs into one batch, runs the model once, and
// returns each image's detection-head tensors: result[i][h] is head h
// of image i, each a caller-owned [1, C, H, W] tensor. Input rules
// match ForwardBatch. The batch-sized head buffers are split into
// per-image copies and returned to the run's arena, so steady-state
// serving reuses them across batches.
func (p *Program) HeadsBatch(inputs []*tensor.Tensor) (heads [][]*tensor.Tensor, err error) {
	return p.HeadsBatchArena(inputs, nil)
}

// HeadsBatchArena is HeadsBatch drawing the per-image head copies from
// dst instead of the heap (nil dst behaves exactly like HeadsBatch).
// A serving executor passes a long-lived arena and returns each head
// tensor via dst.Put after postprocessing, so steady-state detect
// batches recycle warm head buffers instead of allocating
// heads×batch tensors per forward. Callers that hand head tensors to
// clients (Heads requests) must NOT recycle them.
func (p *Program) HeadsBatchArena(inputs []*tensor.Tensor, dst *tensor.Arena) (heads [][]*tensor.Tensor, err error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("engine: HeadsBatch of no inputs")
	}
	if len(p.headIDs) == 0 {
		return nil, fmt.Errorf("engine: model %q has no detection heads", p.model.Name)
	}
	defer func() {
		if r := recover(); r != nil {
			heads, err = nil, fmt.Errorf("engine: HeadsBatch: %v", r)
		}
	}()
	batch := tensor.Stack(inputs)
	heads = make([][]*tensor.Tensor, len(inputs))
	for i := range heads {
		heads[i] = make([]*tensor.Tensor, len(p.headIDs))
	}
	_, err = p.runFinish(batch, false, p.headIDs, func(outs []*tensor.Tensor, arena *tensor.Arena) {
		for h, id := range p.headIDs {
			for i, img := range tensor.SplitBatchArena(outs[id], dst) {
				heads[i][h] = img
			}
			arena.Put(outs[id])
		}
	})
	if err != nil {
		return nil, err
	}
	return heads, nil
}

// ForwardBatch stacks the inputs into one NCHW batch, runs the model
// once, and returns each image's final output tensor. Every input must
// be a single image ([C, H, W] or [1, C, H, W]) of identical shape. The
// results own their data; outputs match len(inputs) independent Output
// calls up to floating-point summation order. Batched convolutions are
// additionally split across the worker pool, so one batched pass beats
// N sequential single-image passes.
func (p *Program) ForwardBatch(inputs []*tensor.Tensor) (outs []*tensor.Tensor, err error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("engine: ForwardBatch of no inputs")
	}
	defer func() {
		if r := recover(); r != nil {
			outs, err = nil, fmt.Errorf("engine: ForwardBatch: %v", r)
		}
	}()
	batch := tensor.Stack(inputs)
	out, err := p.Output(batch)
	if err != nil {
		return nil, err
	}
	return tensor.SplitBatch(out), nil
}

// runCtx is the per-run execution context: the input, the output table,
// and (for buffer-recycling runs) the pooled runState.
type runCtx struct {
	p     *Program
	input *tensor.Tensor
	outs  []*tensor.Tensor
	// splitBatch enables splitting a batched convolution across the
	// worker pool. It is set only while executing a single-layer
	// wavefront level, where the level scheduler leaves the pool idle —
	// on wider levels the layers themselves fill the workers, and
	// nesting a second pool per conv would oversubscribe the CPUs.
	splitBatch bool
	// rs is nil when retaining all outputs; otherwise it holds the
	// arena the buffers come from, refs counts the remaining consumers
	// of each layer's output, owned marks outputs whose buffers came
	// from the arena, and alias maps pass-through outputs (Detect) to
	// the layer that owns the buffer.
	rs *runState
}

func (p *Program) run(input *tensor.Tensor, retainAll bool, keep []int) ([]*tensor.Tensor, error) {
	return p.runFinish(input, retainAll, keep, nil)
}

// runFinish is run with a completion hook: on success, finish (if
// non-nil, and the run recycles buffers) is invoked while the per-run
// state is still held, so batch callers can copy kept outputs and Put
// their buffers back into the arena before it returns to the pool.
func (p *Program) runFinish(input *tensor.Tensor, retainAll bool, keep []int, finish func(outs []*tensor.Tensor, arena *tensor.Arena)) ([]*tensor.Tensor, error) {
	if input.Rank() != 4 {
		return nil, fmt.Errorf("engine: input must be 4-D, got %v", input.Shape())
	}
	if input.Dim(1) != p.model.InputC {
		return nil, fmt.Errorf("engine: input has %d channels, model wants %d", input.Dim(1), p.model.InputC)
	}
	n := len(p.model.Layers)
	rc := &runCtx{p: p, input: input, outs: make([]*tensor.Tensor, n)}
	if !retainAll {
		rc.rs = p.acquireRun(keep)
		defer p.releaseRun(rc.rs)
	}
	for _, lvl := range p.levels {
		if p.workers <= 1 || len(lvl) == 1 {
			rc.splitBatch = p.workers > 1
			for _, id := range lvl {
				if err := rc.exec(id); err != nil {
					return nil, err
				}
			}
			continue
		}
		rc.splitBatch = false
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		sem := make(chan struct{}, p.workers)
		for _, id := range lvl {
			wg.Add(1)
			sem <- struct{}{}
			go func(id int) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := rc.exec(id); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(id)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if finish != nil && rc.rs != nil {
		finish(rc.outs, rc.rs.arena)
	}
	return rc.outs, nil
}

// get allocates a layer output buffer, from the arena when recycling.
// It is the engine's sanctioned arena plumbing: the buffer it hands out
// is tracked by the run's refcounts and returned via consume, with the
// Heads keep-list exempting the outputs that survive the run.
//
//rtoss:arena-owner
func (rc *runCtx) get(shape ...int) *tensor.Tensor {
	if rc.rs != nil {
		return rc.rs.arena.Get(shape...)
	}
	return tensor.New(shape...)
}

// consume retires one reference to layer id's output, recycling its
// buffer once the last consumer is done. Aliased outputs forward the
// release to the owning layer.
func (rc *runCtx) consume(id int) {
	if atomic.AddInt32(&rc.rs.refs[id], -1) != 0 {
		return
	}
	if a := rc.rs.alias[id]; a >= 0 {
		rc.consume(int(a))
		return
	}
	if rc.rs.owned[id] {
		rc.rs.arena.Put(rc.outs[id])
		rc.outs[id] = nil
	}
}

// exec runs one layer. Kernel panics (shape mismatches, empty outputs)
// are recovered into errors so a failing worker cannot crash the pool.
func (rc *runCtx) exec(id int) (err error) {
	l := rc.p.model.Layers[id]
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: layer %q: %v", l.Name, r)
		}
	}()
	in := func(i int) *tensor.Tensor { return rc.outs[l.Inputs[i]] }
	var out *tensor.Tensor
	owned := true
	aliasOf := -1
	switch l.Kind {
	case nn.Input:
		out, owned = rc.input, false
	case nn.Conv:
		out = rc.conv(l, in(0))
	case nn.BatchNorm:
		out = rc.batchNorm(in(0), l.Gamma, l.Beta)
	case nn.Act:
		out = rc.activate(in(0), l.Act)
	case nn.MaxPool:
		t := in(0)
		oh := tensor.ConvOut(t.Dim(2), l.PoolK, l.PoolStride, l.PoolPad)
		ow := tensor.ConvOut(t.Dim(3), l.PoolK, l.PoolStride, l.PoolPad)
		out = rc.get(t.Dim(0), t.Dim(1), oh, ow)
		tensor.MaxPool2DInto(out, t, l.PoolK, l.PoolStride, l.PoolPad)
	case nn.Upsample:
		t := in(0)
		scale := l.Scale
		if scale == 0 {
			scale = 2
		}
		if scale < 1 {
			return fmt.Errorf("engine: upsample layer %q has invalid scale %d", l.Name, l.Scale)
		}
		out = rc.get(t.Dim(0), t.Dim(1), scale*t.Dim(2), scale*t.Dim(3))
		tensor.UpsampleNearestInto(out, t, scale)
	case nn.Concat:
		ts := make([]*tensor.Tensor, len(l.Inputs))
		total := 0
		for i := range l.Inputs {
			ts[i] = in(i)
			total += ts[i].Dim(1)
		}
		out = rc.get(ts[0].Dim(0), total, ts[0].Dim(2), ts[0].Dim(3))
		tensor.ConcatChannelsInto(out, ts...)
	case nn.Add:
		first := in(0)
		out = rc.get(first.Shape()...)
		copy(out.Data, first.Data)
		for i := 1; i < len(l.Inputs); i++ {
			out.Add(in(i))
		}
	case nn.GlobalPool:
		out = rc.globalAvgPool(in(0))
	case nn.Linear:
		out, err = rc.linear(in(0), l)
		if err != nil {
			return err
		}
	case nn.Detect:
		// Sink node: expose the first head's output. The buffer stays
		// owned by the producing layer (alias), so its release waits
		// for this output's own consumers.
		out, owned, aliasOf = in(0), false, l.Inputs[0]
	default:
		return fmt.Errorf("engine: unsupported layer kind %v", l.Kind)
	}
	rc.outs[id] = out
	if rc.rs != nil {
		rc.rs.owned[id] = owned
		rc.rs.alias[id] = int32(aliasOf)
		for i, p := range l.Inputs {
			if i == 0 && aliasOf >= 0 {
				continue // reference transferred to the alias
			}
			rc.consume(p)
		}
	}
	return nil
}

// conv dispatches one convolution to the compiled sparse kernel or the
// dense path, splitting batched inputs across the worker pool.
func (rc *runCtx) conv(l *nn.Layer, t *tensor.Tensor) *tensor.Tensor {
	oh := tensor.ConvOut(t.Dim(2), l.KH, l.Stride, l.Pad)
	ow := tensor.ConvOut(t.Dim(3), l.KW, l.Stride, l.Pad)
	out := rc.get(t.Dim(0), l.OutC, oh, ow)
	if n := t.Dim(0); n > 1 && rc.splitBatch {
		rc.convBatched(l, t, out, n)
		return out
	}
	rc.convInto(l, t, out)
	return out
}

// convInto runs the compiled (or dense) kernel for one conv layer.
func (rc *runCtx) convInto(l *nn.Layer, t, out *tensor.Tensor) {
	switch cc := rc.p.compiled[l.ID]; {
	case cc != nil && cc.Pattern != nil:
		tensor.Conv2DPatternInto(out, t, cc.Pattern, l.Bias, l.Stride, l.Pad, l.Group)
	case cc != nil && cc.CSR != nil:
		tensor.Conv2DCSRInto(out, t, cc.CSR, l.Bias, l.Stride, l.Pad, l.Group)
	default:
		tensor.Conv2DInto(out, t, l.Weight, l.Bias, l.Stride, l.Pad, l.Group)
	}
}

// convBatched splits a batched convolution across up to workers
// goroutines, one batch image at a time (NCHW images are contiguous, so
// each goroutine runs the single-image kernel on a zero-copy view).
// Worker panics are re-raised in the caller so exec's recover converts
// them into errors.
func (rc *runCtx) convBatched(l *nn.Layer, t, out *tensor.Tensor, n int) {
	workers := rc.p.workers
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		next     = int32(-1)
		panicMu  sync.Mutex
		panicVal any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				b := int(atomic.AddInt32(&next, 1))
				if b >= n {
					return
				}
				rc.convInto(l, t.BatchView(b), out.BatchView(b))
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

func (rc *runCtx) batchNorm(t *tensor.Tensor, gamma, beta []float32) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := rc.get(n, c, h, w)
	hw := h * w
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			g, be := gamma[ic], beta[ic]
			src := t.Data[(b*c+ic)*hw : (b*c+ic+1)*hw]
			dst := out.Data[(b*c+ic)*hw : (b*c+ic+1)*hw]
			for i, v := range src {
				dst[i] = g*v + be
			}
		}
	}
	return out
}

func (rc *runCtx) activate(t *tensor.Tensor, act nn.Activation) *tensor.Tensor {
	out := rc.get(t.Shape()...)
	for i, v := range t.Data {
		out.Data[i] = applyAct(v, act)
	}
	return out
}

func (rc *runCtx) globalAvgPool(t *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := rc.get(n, c, 1, 1)
	hw := h * w
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			sum := 0.0
			for _, v := range t.Data[(b*c+ic)*hw : (b*c+ic+1)*hw] {
				sum += float64(v)
			}
			out.Data[b*c+ic] = float32(sum / float64(hw))
		}
	}
	return out
}

func (rc *runCtx) linear(t *tensor.Tensor, l *nn.Layer) (*tensor.Tensor, error) {
	n := t.Dim(0)
	flat := t.Dim(1) * t.Dim(2) * t.Dim(3)
	if flat != l.InF {
		return nil, fmt.Errorf("engine: linear %q expects %d features, got %d", l.Name, l.InF, flat)
	}
	out := rc.get(n, l.OutF, 1, 1)
	for b := 0; b < n; b++ {
		for o := 0; o < l.OutF; o++ {
			acc := float32(0)
			if l.LinB != nil {
				acc = l.LinB[o]
			}
			row := l.LinW.Data[o*l.InF : (o+1)*l.InF]
			for i := 0; i < flat; i++ {
				acc += row[i] * t.Data[b*flat+i]
			}
			out.Data[b*l.OutF+o] = acc
		}
	}
	return out, nil
}
