package engine

import (
	"testing"

	"rtoss/internal/nn"
	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// tinyMultiHead builds a two-scale detector so Heads has more than one
// tensor to return.
func tinyMultiHead(t testing.TB, seed uint64) *nn.Model {
	t.Helper()
	b := nn.NewBuilder("tinymulti", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("stem", x, 3, 8, 3, 2, 1, nn.SiLU)
	p3 := b.ConvBNAct("p3", x, 8, 8, 3, 1, 1, nn.SiLU)
	p4 := b.ConvBNAct("p4", p3, 8, 16, 3, 2, 1, nn.SiLU)
	h3 := b.Conv("head3", p3, 8, 14, 1, 1, 0, true)
	h4 := b.Conv("head4", p4, 16, 14, 1, 1, 0, true)
	b.Detect("detect", h3, h4)
	m := b.MustBuild()
	m.InitWeights(seed)
	return m
}

func TestHeadsMatchForward(t *testing.T) {
	m := tinyMultiHead(t, 3)
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(4), 3, 32, 32)
	heads, err := p.Heads(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 2 {
		t.Fatalf("got %d heads, want 2", len(heads))
	}
	all, err := p.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var detect *nn.Layer
	for _, l := range m.Layers {
		if l.Kind == nn.Detect {
			detect = l
		}
	}
	for i, id := range detect.Inputs {
		if !heads[i].Equal(all[id], 0) {
			t.Errorf("head %d differs from Forward output of layer %d", i, id)
		}
	}
}

// TestHeadsSurviveNextRun guards the buffer plan: head tensors returned
// to the caller must not be recycled into a later run on the same
// pooled arena.
func TestHeadsSurviveNextRun(t *testing.T) {
	m := tinyMultiHead(t, 5)
	p, err := Compile(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(6), 3, 32, 32)
	heads, err := p.Heads(in)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]*tensor.Tensor, len(heads))
	for i, h := range heads {
		snap[i] = h.Clone()
	}
	// Churn the pooled run state with different inputs.
	for i := 0; i < 3; i++ {
		if _, err := p.Output(randInput(rng.New(100+uint64(i)), 3, 32, 32)); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range heads {
		if !h.Equal(snap[i], 0) {
			t.Errorf("head %d was clobbered by a later run", i)
		}
	}
}

func TestHeadsBatchMatchesSingle(t *testing.T) {
	m := tinyMultiHead(t, 7)
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	inputs := []*tensor.Tensor{
		randInput(r, 3, 32, 32),
		randInput(r, 3, 32, 32),
		randInput(r, 3, 32, 32),
	}
	batched, err := p.HeadsBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(inputs) {
		t.Fatalf("got %d results, want %d", len(batched), len(inputs))
	}
	for i, in := range inputs {
		single, err := p.Heads(in)
		if err != nil {
			t.Fatal(err)
		}
		for h := range single {
			if !batched[i][h].Equal(single[h], 1e-5) {
				t.Errorf("image %d head %d: batched differs from single", i, h)
			}
		}
	}
}

// TestHeadsBatchResultsOwnData guards the buffer recycling in
// HeadsBatch: the batch-sized head maps go back to the arena, so the
// per-image results must be copies that later runs cannot clobber.
func TestHeadsBatchResultsOwnData(t *testing.T) {
	m := tinyMultiHead(t, 9)
	p, err := Compile(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	inputs := []*tensor.Tensor{randInput(r, 3, 32, 32), randInput(r, 3, 32, 32)}
	first, err := p.HeadsBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([][]*tensor.Tensor, len(first))
	for i, hs := range first {
		for _, h := range hs {
			snap[i] = append(snap[i], h.Clone())
		}
	}
	// Churn the pooled arena with different batches.
	for k := 0; k < 3; k++ {
		if _, err := p.HeadsBatch([]*tensor.Tensor{
			randInput(rng.New(200+uint64(k)), 3, 32, 32),
			randInput(rng.New(300+uint64(k)), 3, 32, 32),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, hs := range first {
		for h, tns := range hs {
			if !tns.Equal(snap[i][h], 0) {
				t.Errorf("image %d head %d was clobbered by a later batch", i, h)
			}
		}
	}
}

func TestHeadsErrorsWithoutDetect(t *testing.T) {
	b := nn.NewBuilder("nodetect", 3, 8, 8, 2)
	x := b.Input()
	b.Conv("c", x, 3, 4, 3, 1, 1, true)
	m := b.MustBuild()
	m.InitWeights(1)
	p, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Heads(tensor.New(1, 3, 8, 8)); err == nil {
		t.Fatal("Heads on a model without Detect succeeded, want error")
	}
}
