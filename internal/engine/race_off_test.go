//go:build !race

package engine

// raceEnabled reports whether the race detector is active; sync.Pool
// drops items randomly under -race, so pool-retention assertions only
// hold without it.
const raceEnabled = false
