package engine

import (
	"runtime"
	"sync"

	"rtoss/internal/nn"
	"rtoss/internal/sparse"
	"rtoss/internal/tensor"
)

// Program is a model compiled once for execution: topological wavefront
// levels, per-layer kernel choices and the activation buffer plan
// (consumer counts). A Program is immutable after Compile and safe for
// concurrent use — one Program serves any number of goroutines; per-run
// state is borrowed from an internal pool. Recompile after mutating the
// model's weights (e.g. pruning) for the sparse dispatch to see the new
// zeros; the model must not be mutated while the Program is in use.
type Program struct {
	model     *nn.Model
	mode      Mode
	workers   int
	levels    [][]int
	consumers []int32 // times each layer's output is consumed as an input
	compiled  []*sparse.CompiledConv
	headIDs   []int // inputs of the model's Detect sink (nil if none)

	// runs pools per-request state (activation arena + refcounts) so
	// steady-state serving reuses buffers across requests.
	runs sync.Pool
}

// Compile lowers a model into an immutable, shareable Program.
func Compile(m *nn.Model, opts Options) (*Program, error) {
	order, err := m.Graph().TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(m.Layers)
	level := make([]int, n)
	maxLevel := 0
	for _, id := range order {
		for _, p := range m.Layers[id].Inputs {
			if level[p]+1 > level[id] {
				level[id] = level[p] + 1
			}
		}
		if level[id] > maxLevel {
			maxLevel = level[id]
		}
	}
	p := &Program{
		model:     m,
		mode:      opts.Mode,
		workers:   opts.Workers,
		levels:    make([][]int, maxLevel+1),
		consumers: make([]int32, n),
		compiled:  make([]*sparse.CompiledConv, n),
	}
	if p.workers <= 0 {
		p.workers = runtime.GOMAXPROCS(0)
	}
	for _, id := range order {
		p.levels[level[id]] = append(p.levels[level[id]], id)
		for _, pr := range m.Layers[id].Inputs {
			p.consumers[pr]++
		}
	}
	for _, l := range m.Layers {
		if l.Kind == nn.Detect {
			p.headIDs = append([]int(nil), l.Inputs...)
		}
	}
	if opts.Mode != ModeDense {
		dict := opts.PatternDict
		if dict == nil {
			dict = sparse.DefaultPatternDict()
		}
		cutoff := autoDensityCutoff
		if opts.Mode == ModeSparse {
			cutoff = 1 // every pruned layer, whatever its density
		}
		for _, l := range m.Layers {
			p.compiled[l.ID] = sparse.CompileConv(l, dict, cutoff)
		}
	}
	p.runs.New = func() any { return p.newRunState() }
	return p, nil
}

// Mode returns the program's dispatch policy.
func (p *Program) Mode() Mode { return p.mode }

// Model returns the model the program was compiled from. Treat it as
// read-only; mutating weights invalidates the compiled kernels.
func (p *Program) Model() *nn.Model { return p.model }

// Workers returns the per-level worker pool bound.
func (p *Program) Workers() int { return p.workers }

// MemoryBytes estimates the resident footprint of the Program: the
// model's parameter tensors plus the compiled sparse-kernel payloads.
// Per-run activation arenas are excluded — they are pooled per server,
// scale with resolution rather than with the model, and a registry
// budgeting which Programs to keep cares about the irreducible
// per-model cost. The estimate is deterministic for a given model, so
// LRU eviction decisions are reproducible.
func (p *Program) MemoryBytes() int64 {
	var n int64
	for _, l := range p.model.Layers {
		if l.Weight != nil {
			n += int64(len(l.Weight.Data)) * 4
		}
		if l.LinW != nil {
			n += int64(len(l.LinW.Data)) * 4
		}
		n += int64(len(l.Bias)+len(l.Gamma)+len(l.Beta)+len(l.LinB)) * 4
	}
	for _, cc := range p.compiled {
		if cc == nil {
			continue
		}
		if pc := cc.Pattern; pc != nil {
			n += int64(len(pc.Index)) + int64(len(pc.ValPtr))*4 + int64(len(pc.Values))*4
			for _, taps := range pc.DictTaps {
				n += int64(len(taps)) * 4
			}
		}
		if cs := cc.CSR; cs != nil {
			n += int64(len(cs.RowPtr))*4 + int64(len(cs.ColIdx))*4 + int64(len(cs.Values))*4
		}
	}
	return n
}

// SparseLayers returns how many conv layers were compiled to a sparse
// kernel (pattern-grouped and CSR counted separately).
func (p *Program) SparseLayers() (patternLayers, csrLayers int) {
	for _, cc := range p.compiled {
		if cc == nil {
			continue
		}
		if cc.Pattern != nil {
			patternLayers++
		} else {
			csrLayers++
		}
	}
	return patternLayers, csrLayers
}

// runState is the poolable per-request execution state for runs that
// recycle activation buffers: the arena the buffers come from plus the
// refcount/ownership planes. The arena outlives individual runs (that
// is the point of pooling — buffers warm up once), while the planes are
// reset on acquire.
type runState struct {
	arena *tensor.Arena
	refs  []int32
	owned []bool
	alias []int32
}

func (p *Program) newRunState() *runState {
	n := len(p.model.Layers)
	return &runState{
		arena: tensor.NewArena(),
		refs:  make([]int32, n),
		owned: make([]bool, n),
		alias: make([]int32, n),
	}
}

// acquireRun borrows reset per-request state from the pool. Layers in
// keep get an extra reference so their output buffers are handed to the
// caller instead of being recycled through the arena.
func (p *Program) acquireRun(keep []int) *runState {
	rs := p.runs.Get().(*runState)
	n := len(p.model.Layers)
	copy(rs.refs, p.consumers)
	rs.refs[n-1]++ // the returned output is never recycled
	for _, id := range keep {
		rs.refs[id]++
	}
	for i := range rs.owned {
		rs.owned[i] = false
		rs.alias[i] = -1
	}
	return rs
}

// releaseRun returns per-request state (and its warm arena) to the pool.
func (p *Program) releaseRun(rs *runState) { p.runs.Put(rs) }
