// Package engine executes model descriptors for real: a forward pass
// over the numeric kernels in internal/tensor. It exists to (a) prove
// the descriptors are runnable networks, not just parameter
// inventories, (b) let tests measure how pruning perturbs actual
// activations, and (c) demonstrate the paper's central claim in this
// codebase: semi-structured sparsity is *executable* — a pattern-pruned
// model really does run faster than its dense twin.
//
// The engine is sparsity-aware and concurrent:
//
//   - per layer it dispatches dense, pattern-grouped or CSR convolution
//     kernels, chosen from the layer's recorded prune structure and
//     measured weight density (Options.Mode selects dense-only,
//     forced-sparse or automatic dispatch);
//   - layers are wavefront-scheduled: the DAG's topological levels run
//     one after another, the layers inside a level concurrently on a
//     bounded worker pool;
//   - Output-style runs reuse activation buffers through a per-run
//     arena — a layer's output buffer is recycled as soon as its last
//     consumer has executed.
//
// The analytic latency/energy estimation lives in internal/hw; this
// package is the numeric twin.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/sparse"
	"rtoss/internal/tensor"
)

// Mode selects the engine's kernel-dispatch policy.
type Mode int

const (
	// ModeAuto picks dense or sparse per layer: layers whose weight
	// density is below a cutoff (i.e. where skipping zeros pays for the
	// indirection) run sparse, everything else dense.
	ModeAuto Mode = iota
	// ModeDense runs every layer with the dense kernels regardless of
	// sparsity (the baseline pruning papers argue against).
	ModeDense
	// ModeSparse runs every pruned layer with sparse kernels, even when
	// its density makes that a poor trade; unpruned layers stay dense.
	ModeSparse
)

var modeNames = map[Mode]string{ModeAuto: "auto", ModeDense: "dense", ModeSparse: "sparse"}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses "auto", "dense" or "sparse".
func ParseMode(s string) (Mode, error) {
	for m, n := range modeNames {
		if n == s {
			return m, nil
		}
	}
	return ModeAuto, fmt.Errorf("engine: unknown mode %q (auto|dense|sparse)", s)
}

// autoDensityCutoff is the weight density below which ModeAuto switches
// a conv layer to a sparse kernel. The sparse paths cost roughly one
// multiply-add per non-zero tap plus per-kernel indirection, so they
// win comfortably below ~3/4 density and lose above it.
const autoDensityCutoff = 0.75

// Options configures an Engine.
type Options struct {
	// Mode is the kernel-dispatch policy (default ModeAuto).
	Mode Mode
	// Workers bounds the per-level worker pool; 0 means GOMAXPROCS.
	Workers int
	// PatternDict is the mask dictionary pattern-compiled layers are
	// encoded against. Nil uses the canonical R-TOSS dictionaries
	// (2EP..5EP) plus the empty mask (connectivity-pruned kernels).
	PatternDict []uint16
}

// compiledConv is a conv layer lowered to a sparse execution format;
// exactly one field is set.
type compiledConv struct {
	pattern *tensor.PatternConv
	csr     *tensor.CSRConv
}

// Engine is a model compiled for execution: topological wavefront
// levels plus per-layer kernel choices. An Engine is immutable after
// New and safe for concurrent use; recompile after mutating the model's
// weights (e.g. pruning) for the sparse dispatch to see the new zeros.
type Engine struct {
	model     *nn.Model
	mode      Mode
	workers   int
	levels    [][]int
	consumers []int32 // times each layer's output is consumed as an input
	compiled  []*compiledConv
}

// defaultPatternDict returns the union of the canonical R-TOSS mask
// dictionaries plus the empty mask, so connectivity-pruned (all-zero)
// kernels still encode.
func defaultPatternDict() []uint16 {
	dict := []uint16{0}
	for _, entries := range []int{2, 3, 4, 5} {
		for _, m := range pattern.NewDictionary(entries).Masks {
			dict = append(dict, uint16(m))
		}
	}
	return dict
}

// New compiles a model for execution.
func New(m *nn.Model, opts Options) (*Engine, error) {
	order, err := m.Graph().TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(m.Layers)
	level := make([]int, n)
	maxLevel := 0
	for _, id := range order {
		for _, p := range m.Layers[id].Inputs {
			if level[p]+1 > level[id] {
				level[id] = level[p] + 1
			}
		}
		if level[id] > maxLevel {
			maxLevel = level[id]
		}
	}
	e := &Engine{
		model:     m,
		mode:      opts.Mode,
		workers:   opts.Workers,
		levels:    make([][]int, maxLevel+1),
		consumers: make([]int32, n),
		compiled:  make([]*compiledConv, n),
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	for _, id := range order {
		e.levels[level[id]] = append(e.levels[level[id]], id)
		for _, p := range m.Layers[id].Inputs {
			e.consumers[p]++
		}
	}
	if opts.Mode != ModeDense {
		dict := opts.PatternDict
		if dict == nil {
			dict = defaultPatternDict()
		}
		for _, l := range m.Layers {
			e.compiled[l.ID] = compileConv(l, opts.Mode, dict)
		}
	}
	return e, nil
}

// compileConv lowers one conv layer to a sparse format, or returns nil
// to keep it dense.
func compileConv(l *nn.Layer, mode Mode, dict []uint16) *compiledConv {
	if l.Kind != nn.Conv || l.Weight == nil {
		return nil
	}
	wc := l.WeightCount()
	if wc == 0 {
		return nil
	}
	density := float64(l.NNZ()) / float64(wc)
	pruned := l.Structure != nn.SparsityDense || density < 0.999
	switch mode {
	case ModeSparse:
		if !pruned {
			return nil
		}
	default: // ModeAuto
		if !pruned || density > autoDensityCutoff {
			return nil
		}
	}
	// Pattern fast path: spatial kernels whose occupancy masks all come
	// from the shared dictionary (3×3 pattern-pruned layers). 1×1
	// layers (kernel size 1) and off-dictionary layers fall back to CSR.
	if ks := l.KH * l.KW; ks > 1 && ks <= 16 {
		if pc, err := sparse.CompilePatternConv(l, dict); err == nil {
			return &compiledConv{pattern: pc}
		}
	}
	cc, err := sparse.CompileCSRConv(l)
	if err != nil {
		return nil
	}
	return &compiledConv{csr: cc}
}

// Mode returns the engine's dispatch policy.
func (e *Engine) Mode() Mode { return e.mode }

// SparseLayers returns how many conv layers were compiled to a sparse
// kernel (pattern-grouped and CSR counted separately).
func (e *Engine) SparseLayers() (patternLayers, csrLayers int) {
	for _, cc := range e.compiled {
		if cc == nil {
			continue
		}
		if cc.pattern != nil {
			patternLayers++
		} else {
			csrLayers++
		}
	}
	return patternLayers, csrLayers
}

// Forward runs the model on input (shape [N, InputC, H, W]) and returns
// every layer's output tensor, indexed by layer ID. H/W may differ from
// the model's nominal resolution as long as every conv output stays
// non-empty. Because every output is retained, Forward cannot recycle
// activation buffers; use Output when only the final tensor matters.
func (e *Engine) Forward(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	return e.run(input, true)
}

// Output runs the model and returns the final layer's tensor.
// Intermediate activations are recycled through a per-run arena as soon
// as their last consumer has executed.
func (e *Engine) Output(input *tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := e.run(input, false)
	if err != nil {
		return nil, err
	}
	return outs[len(outs)-1], nil
}

// runCtx is the per-run execution state.
type runCtx struct {
	e     *Engine
	input *tensor.Tensor
	outs  []*tensor.Tensor
	// Arena-mode state (nil/unused when retaining all outputs): refs
	// counts the remaining consumers of each layer's output, owned
	// marks outputs whose buffers came from the arena, and alias maps
	// pass-through outputs (Detect) to the layer that owns the buffer.
	arena *tensor.Arena
	refs  []int32
	owned []bool
	alias []int32
}

func (e *Engine) run(input *tensor.Tensor, retainAll bool) ([]*tensor.Tensor, error) {
	if input.Rank() != 4 {
		return nil, fmt.Errorf("engine: input must be 4-D, got %v", input.Shape())
	}
	if input.Dim(1) != e.model.InputC {
		return nil, fmt.Errorf("engine: input has %d channels, model wants %d", input.Dim(1), e.model.InputC)
	}
	n := len(e.model.Layers)
	rc := &runCtx{e: e, input: input, outs: make([]*tensor.Tensor, n)}
	if !retainAll {
		rc.arena = tensor.NewArena()
		rc.refs = make([]int32, n)
		copy(rc.refs, e.consumers)
		rc.refs[n-1]++ // the returned output is never recycled
		rc.owned = make([]bool, n)
		rc.alias = make([]int32, n)
		for i := range rc.alias {
			rc.alias[i] = -1
		}
	}
	for _, lvl := range e.levels {
		if e.workers <= 1 || len(lvl) == 1 {
			for _, id := range lvl {
				if err := rc.exec(id); err != nil {
					return nil, err
				}
			}
			continue
		}
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		sem := make(chan struct{}, e.workers)
		for _, id := range lvl {
			wg.Add(1)
			sem <- struct{}{}
			go func(id int) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := rc.exec(id); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(id)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return rc.outs, nil
}

// get allocates a layer output buffer, from the arena when recycling.
func (rc *runCtx) get(shape ...int) *tensor.Tensor {
	if rc.arena != nil {
		return rc.arena.Get(shape...)
	}
	return tensor.New(shape...)
}

// consume retires one reference to layer id's output, recycling its
// buffer once the last consumer is done. Aliased outputs forward the
// release to the owning layer.
func (rc *runCtx) consume(id int) {
	if atomic.AddInt32(&rc.refs[id], -1) != 0 {
		return
	}
	if a := rc.alias[id]; a >= 0 {
		rc.consume(int(a))
		return
	}
	if rc.owned[id] {
		rc.arena.Put(rc.outs[id])
		rc.outs[id] = nil
	}
}

// exec runs one layer. Kernel panics (shape mismatches, empty outputs)
// are recovered into errors so a failing worker cannot crash the pool.
func (rc *runCtx) exec(id int) (err error) {
	l := rc.e.model.Layers[id]
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: layer %q: %v", l.Name, r)
		}
	}()
	in := func(i int) *tensor.Tensor { return rc.outs[l.Inputs[i]] }
	var out *tensor.Tensor
	owned := true
	aliasOf := -1
	switch l.Kind {
	case nn.Input:
		out, owned = rc.input, false
	case nn.Conv:
		out = rc.conv(l, in(0))
	case nn.BatchNorm:
		out = rc.batchNorm(in(0), l.Gamma, l.Beta)
	case nn.Act:
		out = rc.activate(in(0), l.Act)
	case nn.MaxPool:
		t := in(0)
		oh := tensor.ConvOut(t.Dim(2), l.PoolK, l.PoolStride, l.PoolPad)
		ow := tensor.ConvOut(t.Dim(3), l.PoolK, l.PoolStride, l.PoolPad)
		out = rc.get(t.Dim(0), t.Dim(1), oh, ow)
		tensor.MaxPool2DInto(out, t, l.PoolK, l.PoolStride, l.PoolPad)
	case nn.Upsample:
		t := in(0)
		scale := l.Scale
		if scale == 0 {
			scale = 2
		}
		if scale < 1 {
			return fmt.Errorf("engine: upsample layer %q has invalid scale %d", l.Name, l.Scale)
		}
		out = rc.get(t.Dim(0), t.Dim(1), scale*t.Dim(2), scale*t.Dim(3))
		tensor.UpsampleNearestInto(out, t, scale)
	case nn.Concat:
		ts := make([]*tensor.Tensor, len(l.Inputs))
		total := 0
		for i := range l.Inputs {
			ts[i] = in(i)
			total += ts[i].Dim(1)
		}
		out = rc.get(ts[0].Dim(0), total, ts[0].Dim(2), ts[0].Dim(3))
		tensor.ConcatChannelsInto(out, ts...)
	case nn.Add:
		first := in(0)
		out = rc.get(first.Shape()...)
		copy(out.Data, first.Data)
		for i := 1; i < len(l.Inputs); i++ {
			out.Add(in(i))
		}
	case nn.GlobalPool:
		out = rc.globalAvgPool(in(0))
	case nn.Linear:
		out, err = rc.linear(in(0), l)
		if err != nil {
			return err
		}
	case nn.Detect:
		// Sink node: expose the first head's output. The buffer stays
		// owned by the producing layer (alias), so its release waits
		// for this output's own consumers.
		out, owned, aliasOf = in(0), false, l.Inputs[0]
	default:
		return fmt.Errorf("engine: unsupported layer kind %v", l.Kind)
	}
	rc.outs[id] = out
	if rc.arena != nil {
		rc.owned[id] = owned
		rc.alias[id] = int32(aliasOf)
		for i, p := range l.Inputs {
			if i == 0 && aliasOf >= 0 {
				continue // reference transferred to the alias
			}
			rc.consume(p)
		}
	}
	return nil
}

// conv dispatches one convolution to the compiled sparse kernel or the
// dense path.
func (rc *runCtx) conv(l *nn.Layer, t *tensor.Tensor) *tensor.Tensor {
	oh := tensor.ConvOut(t.Dim(2), l.KH, l.Stride, l.Pad)
	ow := tensor.ConvOut(t.Dim(3), l.KW, l.Stride, l.Pad)
	out := rc.get(t.Dim(0), l.OutC, oh, ow)
	switch cc := rc.e.compiled[l.ID]; {
	case cc != nil && cc.pattern != nil:
		tensor.Conv2DPatternInto(out, t, cc.pattern, l.Bias, l.Stride, l.Pad, l.Group)
	case cc != nil && cc.csr != nil:
		tensor.Conv2DCSRInto(out, t, cc.csr, l.Bias, l.Stride, l.Pad, l.Group)
	default:
		tensor.Conv2DInto(out, t, l.Weight, l.Bias, l.Stride, l.Pad, l.Group)
	}
	return out
}

func (rc *runCtx) batchNorm(t *tensor.Tensor, gamma, beta []float32) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := rc.get(n, c, h, w)
	hw := h * w
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			g, be := gamma[ic], beta[ic]
			src := t.Data[(b*c+ic)*hw : (b*c+ic+1)*hw]
			dst := out.Data[(b*c+ic)*hw : (b*c+ic+1)*hw]
			for i, v := range src {
				dst[i] = g*v + be
			}
		}
	}
	return out
}

func (rc *runCtx) activate(t *tensor.Tensor, act nn.Activation) *tensor.Tensor {
	out := rc.get(t.Shape()...)
	for i, v := range t.Data {
		out.Data[i] = applyAct(v, act)
	}
	return out
}

func (rc *runCtx) globalAvgPool(t *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := rc.get(n, c, 1, 1)
	hw := h * w
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			sum := 0.0
			for _, v := range t.Data[(b*c+ic)*hw : (b*c+ic+1)*hw] {
				sum += float64(v)
			}
			out.Data[b*c+ic] = float32(sum / float64(hw))
		}
	}
	return out
}

func (rc *runCtx) linear(t *tensor.Tensor, l *nn.Layer) (*tensor.Tensor, error) {
	n := t.Dim(0)
	flat := t.Dim(1) * t.Dim(2) * t.Dim(3)
	if flat != l.InF {
		return nil, fmt.Errorf("engine: linear %q expects %d features, got %d", l.Name, l.InF, flat)
	}
	out := rc.get(n, l.OutF, 1, 1)
	for b := 0; b < n; b++ {
		for o := 0; o < l.OutF; o++ {
			acc := float32(0)
			if l.LinB != nil {
				acc = l.LinB[o]
			}
			row := l.LinW.Data[o*l.InF : (o+1)*l.InF]
			for i := 0; i < flat; i++ {
				acc += row[i] * t.Data[b*flat+i]
			}
			out.Data[b*l.OutF+o] = acc
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Package-level convenience API (compile-and-run with defaults).

// Forward compiles the model with default options (auto dispatch,
// GOMAXPROCS workers) and returns every layer's output tensor, indexed
// by layer ID.
func Forward(m *nn.Model, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	e, err := New(m, Options{})
	if err != nil {
		return nil, err
	}
	return e.Forward(input)
}

// Output runs Forward and returns the final layer's tensor.
func Output(m *nn.Model, input *tensor.Tensor) (*tensor.Tensor, error) {
	e, err := New(m, Options{})
	if err != nil {
		return nil, err
	}
	return e.Output(input)
}

func applyAct(v float32, act nn.Activation) float32 {
	switch act {
	case nn.ReLU:
		if v < 0 {
			return 0
		}
		return v
	case nn.SiLU:
		return v * sigmoid(v)
	case nn.LeakyReLU:
		if v < 0 {
			return 0.1 * v
		}
		return v
	case nn.Sigmoid:
		return sigmoid(v)
	default:
		return v
	}
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// OutputDelta runs both models on the same input and returns the
// relative L2 difference of their final outputs — the activation-space
// damage a pruning method caused.
func OutputDelta(a, b *nn.Model, input *tensor.Tensor) (float64, error) {
	oa, err := Output(a, input)
	if err != nil {
		return 0, err
	}
	ob, err := Output(b, input)
	if err != nil {
		return 0, err
	}
	if !oa.SameShape(ob) {
		return 0, fmt.Errorf("engine: output shapes differ: %v vs %v", oa.Shape(), ob.Shape())
	}
	diff := oa.Clone()
	for i := range diff.Data {
		diff.Data[i] -= ob.Data[i]
	}
	ref := oa.L2()
	if ref == 0 {
		return diff.L2(), nil
	}
	return diff.L2() / ref, nil
}
