// Package engine executes model descriptors for real: a reference
// forward pass over the tensor kernels in internal/tensor. It exists to
// (a) prove the descriptors are runnable networks, not just parameter
// inventories, and (b) let tests measure how pruning perturbs actual
// activations (pattern pruning must preserve outputs far better than
// filter pruning at equal sparsity).
//
// The analytic latency/energy estimation lives in internal/hw; this
// package is the numeric twin.
package engine

import (
	"fmt"
	"math"

	"rtoss/internal/nn"
	"rtoss/internal/tensor"
)

// Forward runs the model on input (shape [N, InputC, H, W]) and returns
// every layer's output tensor, indexed by layer ID. H/W may differ from
// the model's nominal resolution as long as every conv output stays
// non-empty.
func Forward(m *nn.Model, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if input.Rank() != 4 {
		return nil, fmt.Errorf("engine: input must be 4-D, got %v", input.Shape())
	}
	if input.Dim(1) != m.InputC {
		return nil, fmt.Errorf("engine: input has %d channels, model wants %d", input.Dim(1), m.InputC)
	}
	order, err := m.Graph().TopoSort()
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(m.Layers))
	for _, id := range order {
		l := m.Layers[id]
		in := func(i int) *tensor.Tensor { return outs[l.Inputs[i]] }
		switch l.Kind {
		case nn.Input:
			outs[id] = input
		case nn.Conv:
			outs[id] = tensor.Conv2D(in(0), l.Weight, l.Bias, l.Stride, l.Pad, l.Group)
		case nn.BatchNorm:
			outs[id] = batchNorm(in(0), l.Gamma, l.Beta)
		case nn.Act:
			outs[id] = activate(in(0), l.Act)
		case nn.MaxPool:
			outs[id] = tensor.MaxPool2D(in(0), l.PoolK, l.PoolStride, l.PoolPad)
		case nn.Upsample:
			t := in(0)
			scale := l.Scale
			if scale == 0 {
				scale = 2
			}
			for s := 1; s < scale; s *= 2 {
				t = tensor.UpsampleNearest2x(t)
			}
			outs[id] = t
		case nn.Concat:
			ts := make([]*tensor.Tensor, len(l.Inputs))
			for i := range l.Inputs {
				ts[i] = in(i)
			}
			outs[id] = tensor.ConcatChannels(ts...)
		case nn.Add:
			sum := in(0).Clone()
			for i := 1; i < len(l.Inputs); i++ {
				sum.Add(in(i))
			}
			outs[id] = sum
		case nn.GlobalPool:
			outs[id] = globalAvgPool(in(0))
		case nn.Linear:
			outs[id] = linear(in(0), l)
		case nn.Detect:
			// Sink node: expose the first head's output.
			outs[id] = in(0)
		default:
			return nil, fmt.Errorf("engine: unsupported layer kind %v", l.Kind)
		}
	}
	return outs, nil
}

// Output runs Forward and returns the final layer's tensor.
func Output(m *nn.Model, input *tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := Forward(m, input)
	if err != nil {
		return nil, err
	}
	return outs[len(outs)-1], nil
}

func batchNorm(t *tensor.Tensor, gamma, beta []float32) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := tensor.New(n, c, h, w)
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			g, be := gamma[ic], beta[ic]
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					out.Set(g*t.At(b, ic, y, x)+be, b, ic, y, x)
				}
			}
		}
	}
	return out
}

func activate(t *tensor.Tensor, act nn.Activation) *tensor.Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = applyAct(v, act)
	}
	return out
}

func applyAct(v float32, act nn.Activation) float32 {
	switch act {
	case nn.ReLU:
		if v < 0 {
			return 0
		}
		return v
	case nn.SiLU:
		return v * sigmoid(v)
	case nn.LeakyReLU:
		if v < 0 {
			return 0.1 * v
		}
		return v
	case nn.Sigmoid:
		return sigmoid(v)
	default:
		return v
	}
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

func globalAvgPool(t *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := tensor.New(n, c, 1, 1)
	for b := 0; b < n; b++ {
		for ic := 0; ic < c; ic++ {
			sum := 0.0
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					sum += float64(t.At(b, ic, y, x))
				}
			}
			out.Set(float32(sum/float64(h*w)), b, ic, 0, 0)
		}
	}
	return out
}

func linear(t *tensor.Tensor, l *nn.Layer) *tensor.Tensor {
	n := t.Dim(0)
	flat := t.Dim(1) * t.Dim(2) * t.Dim(3)
	if flat != l.InF {
		panic(fmt.Sprintf("engine: linear %q expects %d features, got %d", l.Name, l.InF, flat))
	}
	out := tensor.New(n, l.OutF, 1, 1)
	for b := 0; b < n; b++ {
		for o := 0; o < l.OutF; o++ {
			acc := float32(0)
			if l.LinB != nil {
				acc = l.LinB[o]
			}
			row := l.LinW.Data[o*l.InF : (o+1)*l.InF]
			for i := 0; i < flat; i++ {
				acc += row[i] * t.Data[b*flat+i]
			}
			out.Set(acc, b, o, 0, 0)
		}
	}
	return out
}

// OutputDelta runs both models on the same input and returns the
// relative L2 difference of their final outputs — the activation-space
// damage a pruning method caused.
func OutputDelta(a, b *nn.Model, input *tensor.Tensor) (float64, error) {
	oa, err := Output(a, input)
	if err != nil {
		return 0, err
	}
	ob, err := Output(b, input)
	if err != nil {
		return 0, err
	}
	if !oa.SameShape(ob) {
		return 0, fmt.Errorf("engine: output shapes differ: %v vs %v", oa.Shape(), ob.Shape())
	}
	diff := oa.Clone()
	for i := range diff.Data {
		diff.Data[i] -= ob.Data[i]
	}
	ref := oa.L2()
	if ref == 0 {
		return diff.L2(), nil
	}
	return diff.L2() / ref, nil
}
