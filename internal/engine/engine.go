// Package engine executes model descriptors for real: a forward pass
// over the numeric kernels in internal/tensor. It exists to (a) prove
// the descriptors are runnable networks, not just parameter
// inventories, (b) let tests measure how pruning perturbs actual
// activations, and (c) demonstrate the paper's central claim in this
// codebase: semi-structured sparsity is *executable* — a pattern-pruned
// model really does run faster than its dense twin.
//
// The package is split compile-once / run-many:
//
//   - Program (see Compile) is the immutable compiled artifact: per
//     layer it holds dense, pattern-grouped or CSR convolution kernels,
//     chosen from the layer's recorded prune structure and measured
//     weight density (Options.Mode selects dense-only, forced-sparse or
//     automatic dispatch), plus the DAG's topological wavefront levels
//     and the consumer counts of the activation buffer plan. One
//     Program safely serves any number of concurrent goroutines.
//   - Run state is cheap and per-request: each Output/ForwardBatch call
//     borrows a runState (activation arena + buffer refcounts) from the
//     Program's sync.Pool, so steady-state serving re-uses activation
//     buffers across requests instead of re-allocating them.
//
// Within a run, layers are wavefront-scheduled: the DAG's topological
// levels run one after another, the layers inside a level concurrently
// on a bounded worker pool; batched inputs additionally split
// convolutions across the batch dimension. Output-style runs recycle a
// layer's output buffer as soon as its last consumer has executed.
//
// Engine is a legacy alias for Program; New is a legacy alias for
// Compile. The analytic latency/energy estimation lives in internal/hw;
// this package is the numeric twin.
package engine

import (
	"fmt"
	"math"

	"rtoss/internal/nn"
	"rtoss/internal/tensor"
)

// Mode selects the engine's kernel-dispatch policy.
type Mode int

const (
	// ModeAuto picks dense or sparse per layer: layers whose weight
	// density is below a cutoff (i.e. where skipping zeros pays for the
	// indirection) run sparse, everything else dense.
	ModeAuto Mode = iota
	// ModeDense runs every layer with the dense kernels regardless of
	// sparsity (the baseline pruning papers argue against).
	ModeDense
	// ModeSparse runs every pruned layer with sparse kernels, even when
	// its density makes that a poor trade; unpruned layers stay dense.
	ModeSparse
)

var modeNames = map[Mode]string{ModeAuto: "auto", ModeDense: "dense", ModeSparse: "sparse"}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses "auto", "dense" or "sparse".
func ParseMode(s string) (Mode, error) {
	for m, n := range modeNames {
		if n == s {
			return m, nil
		}
	}
	return ModeAuto, fmt.Errorf("engine: unknown mode %q (auto|dense|sparse)", s)
}

// autoDensityCutoff is the weight density below which ModeAuto switches
// a conv layer to a sparse kernel. The sparse paths cost roughly one
// multiply-add per non-zero tap plus per-kernel indirection, so they
// win comfortably below ~3/4 density and lose above it.
const autoDensityCutoff = 0.75

// Options configures a Program.
type Options struct {
	// Mode is the kernel-dispatch policy (default ModeAuto).
	Mode Mode
	// Workers bounds the per-level worker pool; 0 means GOMAXPROCS.
	Workers int
	// PatternDict is the mask dictionary pattern-compiled layers are
	// encoded against. Nil uses the canonical R-TOSS dictionaries
	// (2EP..5EP) plus the empty mask (connectivity-pruned kernels).
	PatternDict []uint16
}

// Engine is the legacy name of Program, kept so existing callers (and
// the public rtoss.Engine alias) keep compiling.
type Engine = Program

// New compiles a model for execution. It is the legacy name of Compile.
func New(m *nn.Model, opts Options) (*Engine, error) { return Compile(m, opts) }

// ---------------------------------------------------------------------
// Package-level convenience API (compile-and-run with defaults).

// Forward compiles the model with default options (auto dispatch,
// GOMAXPROCS workers) and returns every layer's output tensor, indexed
// by layer ID.
func Forward(m *nn.Model, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	p, err := Compile(m, Options{})
	if err != nil {
		return nil, err
	}
	return p.Forward(input)
}

// Output runs Forward and returns the final layer's tensor.
func Output(m *nn.Model, input *tensor.Tensor) (*tensor.Tensor, error) {
	p, err := Compile(m, Options{})
	if err != nil {
		return nil, err
	}
	return p.Output(input)
}

func applyAct(v float32, act nn.Activation) float32 {
	switch act {
	case nn.ReLU:
		if v < 0 {
			return 0
		}
		return v
	case nn.SiLU:
		return v * sigmoid(v)
	case nn.LeakyReLU:
		if v < 0 {
			return 0.1 * v
		}
		return v
	case nn.Sigmoid:
		return sigmoid(v)
	default:
		return v
	}
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// OutputDelta runs both models on the same input and returns the
// relative L2 difference of their final outputs — the activation-space
// damage a pruning method caused.
func OutputDelta(a, b *nn.Model, input *tensor.Tensor) (float64, error) {
	oa, err := Output(a, input)
	if err != nil {
		return 0, err
	}
	ob, err := Output(b, input)
	if err != nil {
		return 0, err
	}
	if !oa.SameShape(ob) {
		return 0, fmt.Errorf("engine: output shapes differ: %v vs %v", oa.Shape(), ob.Shape())
	}
	diff := oa.Clone()
	for i := range diff.Data {
		diff.Data[i] -= ob.Data[i]
	}
	ref := oa.L2()
	if ref == 0 {
		return diff.L2(), nil
	}
	return diff.L2() / ref, nil
}
