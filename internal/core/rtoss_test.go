package core

import (
	"math"
	"testing"
	"testing/quick"

	"rtoss/internal/models"
	"rtoss/internal/nn"
	"rtoss/internal/pattern"
)

func tinyModel(t testing.TB) *nn.Model {
	t.Helper()
	b := nn.NewBuilder("tiny", 3, 32, 32, 2)
	x := b.Input()
	x = b.ConvBNAct("c1", x, 3, 8, 3, 1, 1, nn.SiLU)
	x = b.ConvBNAct("c2", x, 8, 8, 3, 1, 1, nn.SiLU)
	x = b.ConvBNAct("p1", x, 8, 16, 1, 1, 0, nn.SiLU)
	x = b.ConvBNAct("p2", x, 16, 16, 1, 1, 0, nn.SiLU)
	b.Detect("out", x)
	m := b.MustBuild()
	m.InitWeights(99)
	return m
}

func TestNewRejectsBadEntries(t *testing.T) {
	if _, err := New(Config{Entries: 7}); err == nil {
		t.Fatal("expected error for 7-entry variant")
	}
	if _, err := New(DefaultConfig(2)); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if got := NewVariant(3).Name(); got != "R-TOSS (3EP)" {
		t.Fatalf("Name=%q", got)
	}
}

func TestPrune3x3KeepsExactlyEntriesPerKernel(t *testing.T) {
	m := tinyModel(t)
	f := NewVariant(3)
	if _, err := f.Prune(m); err != nil {
		t.Fatal(err)
	}
	for _, l := range m.ConvLayers() {
		if !l.Is3x3() {
			continue
		}
		for oc := 0; oc < l.OutC; oc++ {
			for ic := 0; ic < l.InC; ic++ {
				k := l.Kernel(oc, ic)
				nnz := 0
				for _, v := range k {
					if v != 0 {
						nnz++
					}
				}
				if nnz > 3 {
					t.Fatalf("3EP kernel (%s %d,%d) has %d non-zeros", l.Name, oc, ic, nnz)
				}
			}
		}
	}
}

func TestPrune1x1ChunksOfNine(t *testing.T) {
	m := tinyModel(t)
	f := NewVariant(2)
	if _, err := f.Prune(m); err != nil {
		t.Fatal(err)
	}
	for _, l := range m.ConvLayers() {
		if !l.Is1x1() {
			continue
		}
		flat := l.Weight.Data
		full := len(flat) / 9
		for c := 0; c < full; c++ {
			nnz := 0
			for _, v := range flat[c*9 : (c+1)*9] {
				if v != 0 {
					nnz++
				}
			}
			if nnz > 2 {
				t.Fatalf("2EP temp matrix %d of %s has %d non-zeros", c, l.Name, nnz)
			}
		}
		// Leftover tail must be fully pruned.
		for i := full * 9; i < len(flat); i++ {
			if flat[i] != 0 {
				t.Fatalf("leftover weight %d of %s not pruned", i, l.Name)
			}
		}
	}
}

func TestKeptWeightsAreOriginal(t *testing.T) {
	m := tinyModel(t)
	orig := m.Clone()
	f := NewVariant(3)
	if _, err := f.Prune(m); err != nil {
		t.Fatal(err)
	}
	// Pattern pruning must preserve surviving weights exactly (it is a
	// mask, not a re-quantisation).
	for li, l := range m.ConvLayers() {
		ol := orig.ConvLayers()[li]
		for i, v := range l.Weight.Data {
			if v != 0 && v != ol.Weight.Data[i] {
				t.Fatalf("kept weight changed: %v -> %v", ol.Weight.Data[i], v)
			}
		}
	}
}

func TestBestFitKeepsMaxMass(t *testing.T) {
	// The selected pattern must retain at least as much L2 mass as any
	// other dictionary mask would (Algorithm 2's selection criterion).
	m := tinyModel(t)
	orig := m.Clone()
	f := NewVariant(2)
	if _, err := f.Prune(m); err != nil {
		t.Fatal(err)
	}
	l, ol := m.ConvLayers()[0], orig.ConvLayers()[0]
	for oc := 0; oc < l.OutC; oc++ {
		for ic := 0; ic < l.InC; ic++ {
			pruned := l.Kernel(oc, ic)
			kept := 0.0
			for _, v := range pruned {
				kept += float64(v) * float64(v)
			}
			_, best := pattern.BestFit(ol.Kernel(oc, ic), f.Dictionary().Masks)
			if math.Abs(kept-best*best) > 1e-6*(1+best*best) {
				t.Fatalf("kernel (%d,%d): kept mass %v, best possible %v", oc, ic, kept, best*best)
			}
		}
	}
}

func TestSparsityMatchesEntryCount(t *testing.T) {
	// Whole-model prunable sparsity should approach 1 - k/9.
	for _, entries := range []int{2, 3, 4, 5} {
		m := tinyModel(t)
		f := NewVariant(entries)
		res, err := f.Prune(m)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - float64(entries)/9
		if math.Abs(res.Sparsity()-want) > 0.02 {
			t.Errorf("%dEP sparsity %.4f want ~%.4f", entries, res.Sparsity(), want)
		}
	}
}

func TestGroupingSharesMasks(t *testing.T) {
	m := tinyModel(t)
	res, err := NewVariant(3).Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	// c1->c2 are coupled 3×3, p1->p2 coupled 1×1: two groups, with the
	// children inheriting.
	if res.Groups != 2 {
		t.Fatalf("groups=%d want 2", res.Groups)
	}
	if res.InheritedKernels == 0 {
		t.Fatal("no kernels inherited masks")
	}
	inherited := 0
	for _, st := range res.Layers {
		if st.Inherited {
			inherited++
		}
	}
	if inherited != 2 {
		t.Fatalf("inherited layers=%d want 2", inherited)
	}
}

func TestGroupingAblationIncreasesSearches(t *testing.T) {
	m1, m2 := tinyModel(t), tinyModel(t)
	with, _ := NewVariant(3).Prune(m1)
	without := mustNew(t, Config{Entries: 3, UseDFSGrouping: false, Transform1x1: true})
	res, err := without.Prune(m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.InheritedKernels != 0 {
		t.Fatal("ablated run inherited masks")
	}
	if res.BestFitSearches <= with.BestFitSearches {
		t.Fatalf("ablation should search more: %d vs %d", res.BestFitSearches, with.BestFitSearches)
	}
	// Same final sparsity either way — grouping saves time, not sparsity.
	if math.Abs(res.Sparsity()-with.Sparsity()) > 0.02 {
		t.Fatalf("sparsity diverged: %v vs %v", res.Sparsity(), with.Sparsity())
	}
}

func Test1x1AblationLeaves1x1Dense(t *testing.T) {
	m := tinyModel(t)
	f := mustNew(t, Config{Entries: 2, UseDFSGrouping: true, Transform1x1: false})
	res, err := f.Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.ConvLayers() {
		if l.Is1x1() && l.Weight.Sparsity() != 0 {
			t.Fatalf("1x1 layer %s pruned despite ablation", l.Name)
		}
	}
	// Overall sparsity must drop versus the full framework.
	m2 := tinyModel(t)
	full, _ := NewVariant(2).Prune(m2)
	if res.Sparsity() >= full.Sparsity() {
		t.Fatalf("1x1 ablation should reduce sparsity: %v vs %v", res.Sparsity(), full.Sparsity())
	}
}

func mustNew(t *testing.T, cfg Config) *Framework {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestYOLOv5sCompressionMatchesTable3(t *testing.T) {
	// Paper Table 3, YOLOv5s reduction ratios: 2EP 4.4×, 3EP 2.9×,
	// 4EP 2.24×, 5EP 1.79×.
	want := map[int]float64{2: 4.4, 3: 2.9, 4: 2.24, 5: 1.79}
	for entries, ratio := range want {
		m := models.YOLOv5s(models.KITTIClasses)
		res, err := NewVariant(entries).Prune(m)
		if err != nil {
			t.Fatal(err)
		}
		got := res.CompressionRatio()
		if math.Abs(got-ratio) > 0.08*ratio {
			t.Errorf("YOLOv5s %dEP compression %.2fx, paper %.2fx", entries, got, ratio)
		}
	}
}

func TestRetinaNetCompressionMatchesTable3(t *testing.T) {
	// Paper Table 3, RetinaNet: 2EP 2.89×, 3EP 2.4× (4EP/5EP deviate
	// more; the shape — monotone decrease with entries — must hold).
	m2 := models.RetinaNet(models.KITTIClasses)
	r2, err := NewVariant(2).Prune(m2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.CompressionRatio()-2.89) > 0.12*2.89 {
		t.Errorf("RetinaNet 2EP compression %.2fx, paper 2.89x", r2.CompressionRatio())
	}
	m3 := models.RetinaNet(models.KITTIClasses)
	r3, _ := NewVariant(3).Prune(m3)
	if math.Abs(r3.CompressionRatio()-2.4) > 0.08*2.4 {
		t.Errorf("RetinaNet 3EP compression %.2fx, paper 2.4x", r3.CompressionRatio())
	}
	m4 := models.RetinaNet(models.KITTIClasses)
	r4, _ := NewVariant(4).Prune(m4)
	m5 := models.RetinaNet(models.KITTIClasses)
	r5, _ := NewVariant(5).Prune(m5)
	if !(r2.CompressionRatio() > r3.CompressionRatio() &&
		r3.CompressionRatio() > r4.CompressionRatio() &&
		r4.CompressionRatio() > r5.CompressionRatio()) {
		t.Error("compression should decrease monotonically with entry count")
	}
}

func TestPatternCountAtMost21(t *testing.T) {
	// Paper: "we have only 21 pre-defined kernel patterns at inference".
	m := models.YOLOv5s(models.KITTIClasses)
	r2, err := NewVariant(2).Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	m3 := models.YOLOv5s(models.KITTIClasses)
	r3, _ := NewVariant(3).Prune(m3)
	total := r2.DistinctPatterns() + r3.DistinctPatterns()
	if total > 21 {
		t.Errorf("2EP+3EP use %d patterns, paper caps at 21", total)
	}
	if r2.DistinctPatterns() == 0 || r3.DistinctPatterns() == 0 {
		t.Error("no patterns recorded")
	}
}

func TestDetectPredictorsUntouched(t *testing.T) {
	m := models.YOLOv5s(models.KITTIClasses)
	orig := m.Clone()
	if _, err := NewVariant(2).Prune(m); err != nil {
		t.Fatal(err)
	}
	for i, l := range m.Layers {
		if l.Kind != nn.Conv {
			continue
		}
		isPred := false
		for _, d := range m.Layers {
			if d.Kind == nn.Detect {
				for _, in := range d.Inputs {
					if in == i {
						isPred = true
					}
				}
			}
		}
		if isPred {
			for j, v := range l.Weight.Data {
				if v != orig.Layers[i].Weight.Data[j] {
					t.Fatalf("detect predictor %s modified", l.Name)
				}
			}
		}
	}
}

func TestNoPruneLayersUntouched(t *testing.T) {
	m := models.RetinaNet(models.KITTIClasses)
	if _, err := NewVariant(2).Prune(m); err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Layers {
		if l.Kind == nn.Conv && l.NoPrune {
			if l.Weight.Sparsity() > 0 {
				t.Fatalf("NoPrune layer %s was pruned", l.Name)
			}
		}
	}
}

func TestGroupsCoverOnlySameKernelSize(t *testing.T) {
	m := models.YOLOv5s(models.KITTIClasses)
	for _, g := range Groups(m) {
		k := m.Layers[g.Parent].KH
		for _, id := range g.Members {
			if m.Layers[id].KH != k {
				t.Fatalf("group %d mixes kernel sizes", g.Parent)
			}
		}
	}
}

func TestPruneDeterministic(t *testing.T) {
	a := models.YOLOv5s(models.KITTIClasses)
	b := models.YOLOv5s(models.KITTIClasses)
	if _, err := NewVariant(3).Prune(a); err != nil {
		t.Fatal(err)
	}
	if _, err := NewVariant(3).Prune(b); err != nil {
		t.Fatal(err)
	}
	la, lb := a.ConvLayers()[5], b.ConvLayers()[5]
	for i := range la.Weight.Data {
		if la.Weight.Data[i] != lb.Weight.Data[i] {
			t.Fatal("pruning is not deterministic")
		}
	}
}

func TestQuickPruneIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		b := nn.NewBuilder("q", 3, 8, 8, 1)
		x := b.Input()
		x = b.ConvBNAct("c", x, 3, 4, 3, 1, 1, nn.ReLU)
		b.Detect("d", x)
		m := b.MustBuild()
		m.InitWeights(seed)
		fw := NewVariant(3)
		if _, err := fw.Prune(m); err != nil {
			return false
		}
		snap := m.Clone()
		if _, err := fw.Prune(m); err != nil {
			return false
		}
		// Re-pruning a pruned model must not change anything: the
		// best-fit pattern of a masked kernel is the mask itself.
		for li, l := range m.ConvLayers() {
			for i, v := range l.Weight.Data {
				if v != snap.ConvLayers()[li].Weight.Data[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPruneYOLOv5s3EP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := models.YOLOv5s(models.KITTIClasses)
		b.StartTimer()
		if _, err := NewVariant(3).Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPruneYOLOv5sNoGrouping(b *testing.B) {
	f, _ := New(Config{Entries: 3, UseDFSGrouping: false, Transform1x1: true})
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := models.YOLOv5s(models.KITTIClasses)
		b.StartTimer()
		if _, err := f.Prune(m); err != nil {
			b.Fatal(err)
		}
	}
}
