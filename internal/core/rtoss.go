// Package core implements the R-TOSS pruning framework — the paper's
// primary contribution. It composes the three algorithms of §IV:
//
//   - Algorithm 1: DFS layer grouping over the computational graph
//     (delegated to internal/graph.BuildGroups), so that pattern masks
//     chosen for a group's parent layer are shared by its coupled
//     children instead of re-searched;
//   - Algorithm 2: 3×3 kernel pattern pruning — per-kernel best-fit
//     mask selection by masked L2 norm from the canonical 2EP/3EP
//     dictionaries (internal/pattern);
//   - Algorithm 3: 1×1 kernel transformation — flatten a layer's 1×1
//     kernels, regroup every 9 weights into temporary 3×3 matrices,
//     pattern-prune those with Algorithm 2, and scatter the survivors
//     back (leftover weights shorter than one matrix are pruned).
//
// Unlike PatDNN-style frameworks, no connectivity pruning is performed:
// every kernel keeps its pattern-selected weights.
package core

import (
	"fmt"
	"time"

	"rtoss/internal/graph"
	"rtoss/internal/nn"
	"rtoss/internal/pattern"
	"rtoss/internal/prune"
)

// Config selects an R-TOSS variant and its ablation switches.
type Config struct {
	// Entries is the kept-weights-per-kernel count: 2 (R-TOSS-2EP) and
	// 3 (R-TOSS-3EP) are the paper's proposed variants; 4 and 5 exist
	// for the Table 3 sensitivity study.
	Entries int
	// UseDFSGrouping enables Algorithm 1 mask sharing (default true;
	// false re-runs best-fit search on every layer — ablation A1).
	UseDFSGrouping bool
	// Transform1x1 enables Algorithm 3 on 1×1 layers (default true;
	// false leaves 1×1 kernels dense — ablation A3).
	Transform1x1 bool
}

// DefaultConfig returns the paper's configuration for a variant.
func DefaultConfig(entries int) Config {
	return Config{Entries: entries, UseDFSGrouping: true, Transform1x1: true}
}

// Framework is the R-TOSS pruner. It implements prune.Pruner.
type Framework struct {
	cfg  Config
	dict pattern.Dictionary
}

// New constructs a framework from a config. The entry count must have a
// canonical dictionary (2, 3, 4 or 5).
func New(cfg Config) (*Framework, error) {
	switch cfg.Entries {
	case 2, 3, 4, 5:
	default:
		return nil, fmt.Errorf("core: no %d-entry pattern variant", cfg.Entries)
	}
	return &Framework{cfg: cfg, dict: pattern.NewDictionary(cfg.Entries)}, nil
}

// NewVariant returns the default-configured R-TOSS variant for the
// given entry count, panicking on invalid counts (static call sites).
func NewVariant(entries int) *Framework {
	f, err := New(DefaultConfig(entries))
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements prune.Pruner.
func (f *Framework) Name() string {
	return fmt.Sprintf("R-TOSS (%dEP)", f.cfg.Entries)
}

// Config returns the framework's configuration.
func (f *Framework) Config() Config { return f.cfg }

// Dictionary returns the pattern dictionary in use.
func (f *Framework) Dictionary() pattern.Dictionary { return f.dict }

// GroupSpec returns the Algorithm 1 grouping specification for a model:
// kernel nodes are the prunable 3×3 and 1×1 convs, transparent nodes
// are the shape/channel-preserving ops the DFS may walk through, and
// coupling requires matching kernel geometry so parent masks transfer
// kernel-for-kernel.
func GroupSpec(m *nn.Model) graph.GroupSpec {
	prunable := make(map[int]*nn.Layer)
	for _, l := range nn.PrunableConvs(m) {
		if l.Is3x3() || l.Is1x1() {
			prunable[l.ID] = l
		}
	}
	return graph.GroupSpec{
		IsKernel: func(id int) bool {
			_, ok := prunable[id]
			return ok
		},
		IsTransparent: func(id int) bool {
			switch m.Layers[id].Kind {
			case nn.BatchNorm, nn.Act, nn.MaxPool, nn.Upsample, nn.Concat, nn.Add:
				return true
			default:
				return false
			}
		},
		Coupled: func(p, c int) bool {
			lp, lc := prunable[p], prunable[c]
			return lp != nil && lc != nil && lp.KH == lc.KH && lp.KW == lc.KW
		},
	}
}

// Groups runs Algorithm 1 on the model and returns the layer groups.
func Groups(m *nn.Model) []graph.Group {
	return graph.BuildGroups(m.Graph(), GroupSpec(m))
}

// maskPlan is the pattern assignment computed for a group's parent
// layer: one mask per kernel (3×3 layers) or per temporary 3×3 matrix
// (1×1 layers). Children reuse it cyclically by index.
type maskPlan []pattern.Mask

// Prune implements prune.Pruner: it runs the full R-TOSS pipeline on
// the model in place.
func (f *Framework) Prune(m *nn.Model) (*prune.Result, error) {
	start := time.Now()
	res := &prune.Result{
		Framework:   f.Name(),
		Model:       m.Name,
		Structure:   prune.Pattern,
		PatternHist: map[uint16]int64{},
	}

	var groups []graph.Group
	if f.cfg.UseDFSGrouping {
		groups = Groups(m)
	} else {
		// Ablation: every prunable layer is its own group.
		for _, l := range nn.PrunableConvs(m) {
			if l.Is3x3() || l.Is1x1() {
				groups = append(groups, graph.Group{Parent: l.ID, Members: []int{l.ID}})
			}
		}
	}
	res.Groups = len(groups)

	for _, g := range groups {
		var plan maskPlan
		for _, id := range g.Members {
			l := m.Layers[id]
			if !f.cfg.Transform1x1 && l.Is1x1() {
				continue
			}
			stat := prune.StatFor(l)
			stat.GroupRoot = g.Parent
			inherit := id != g.Parent && plan != nil
			var used maskPlan
			if l.Is3x3() {
				used = f.prune3x3(l, plan, inherit, res)
			} else {
				used = f.prune1x1(l, plan, inherit, res)
			}
			if id == g.Parent {
				plan = used
			}
			stat.Inherited = inherit
			stat.Finish(l)
			res.Layers = append(res.Layers, stat)
		}
	}

	res.Duration = time.Since(start)
	res.FillParams(m)
	return res, nil
}

// prune3x3 implements Algorithm 2 on one layer. If inherit is true the
// parent plan is applied cyclically; otherwise each kernel gets a
// best-fit search and the layer's own plan is returned.
func (f *Framework) prune3x3(l *nn.Layer, parent maskPlan, inherit bool, res *prune.Result) maskPlan {
	inPerGroup := l.InC / l.Group
	plan := make(maskPlan, 0, l.OutC*inPerGroup)
	idx := 0
	for oc := 0; oc < l.OutC; oc++ {
		for ic := 0; ic < inPerGroup; ic++ {
			kernel := l.Kernel(oc, ic)
			var mask pattern.Mask
			if inherit {
				mask = parent[idx%len(parent)]
				res.InheritedKernels++
			} else {
				mask, _ = pattern.BestFit(kernel, f.dict.Masks)
				res.BestFitSearches++
			}
			mask.Apply(kernel)
			res.PatternHist[uint16(mask)]++
			plan = append(plan, mask)
			idx++
		}
	}
	return plan
}

// prune1x1 implements Algorithm 3 on one layer: the layer's 1×1 kernels
// are flattened (each holds exactly one weight), grouped 9 at a time
// into temporary 3×3 matrices, pattern-pruned via the Algorithm 2
// machinery, and written back. Leftover weights that do not fill a
// matrix are pruned to zero, per the paper.
func (f *Framework) prune1x1(l *nn.Layer, parent maskPlan, inherit bool, res *prune.Result) maskPlan {
	flat := l.Weight.Data // [OutC, InC, 1, 1] is already the flattened view
	n := len(flat)
	full := n / pattern.KernelArea
	plan := make(maskPlan, 0, full)
	for chunk := 0; chunk < full; chunk++ {
		temp := flat[chunk*pattern.KernelArea : (chunk+1)*pattern.KernelArea]
		var mask pattern.Mask
		if inherit {
			mask = parent[chunk%len(parent)]
			res.InheritedKernels++
		} else {
			mask, _ = pattern.BestFit(temp, f.dict.Masks)
			res.BestFitSearches++
		}
		mask.Apply(temp)
		res.PatternHist[uint16(mask)]++
		plan = append(plan, mask)
	}
	// Algorithm 3 line 13: the tail shorter than one 3×3 matrix is
	// treated as zero weights and pruned.
	for i := full * pattern.KernelArea; i < n; i++ {
		flat[i] = 0
	}
	return plan
}
