package detect

import (
	"math"
	"sync"

	"rtoss/internal/tensor"
)

// fast.go is the allocation-free float32 hot path of the post-network
// pipeline. It reimplements head decoding with a polynomial sigmoid
// (tolerance documented by FastSigmoidTolerance), an objectness
// pre-gate on raw logits (cells that cannot reach the score threshold
// never pay a sigmoid), raw-logit class argmax (sigmoid is monotonic,
// so the best class is decided before any transcendental), pooled
// candidate scratch, quickselect TopK and class-bucketed NMS. The
// float64 math.Exp decoders in decode.go remain the exact reference —
// Config.ExactMath routes Postprocess through them, and the
// TestFastSigmoid* property tests bound the divergence.

// FastSigmoidTolerance is the documented accuracy contract of the fast
// sigmoid: |fastSigmoid(x) - 1/(1+exp(-x))| stays below this bound for
// every float32 input (the property test sweeps the logit range and
// asserts it). Pipelines that need bitwise float64 math instead set
// Config.ExactMath.
const FastSigmoidTolerance = 1e-5

const (
	log2e = 1.4426950408889634 // 1/ln(2)
	ln2   = 0.6931471805599453
)

// floorf is float32 floor for fastExp's bounded input range (|x| well
// inside int32): conversion through int32 truncates toward zero, so
// negative non-integers need one correction step. Keeping this in
// float32 avoids the float64 round-trip math.Floor would reintroduce
// into the //rtoss:f32 region.
//
//rtoss:f32
//rtoss:noalloc
func floorf(x float32) float32 {
	i := float32(int32(x))
	if i > x {
		i--
	}
	return i
}

// fastExp approximates e^x in float32: x is split as x/ln2 = k + f with
// f in [-0.5, 0.5], 2^f is a degree-6 Taylor polynomial (relative error
// < 2e-7) and 2^k is assembled directly into the float32 exponent bits.
// Out-of-range inputs saturate (underflow to 0, overflow clamps at
// e^88 ~ 1.7e38) instead of producing Inf/NaN.
//
//rtoss:f32
//rtoss:noalloc
func fastExp(x float32) float32 {
	if x < -87 {
		return 0
	}
	if x > 88 {
		x = 88
	}
	z := x * log2e
	kf := floorf(z + 0.5)
	g := (z - kf) * ln2 // in [-ln2/2, ln2/2]
	// e^g via Horner; coefficients are 1/n! (Taylor about 0).
	p := 1 + g*(1+g*(0.5+g*(1.0/6+g*(1.0/24+g*(1.0/120+g*(1.0/720))))))
	return p * math.Float32frombits(uint32(int32(kf)+127)<<23)
}

// fastSigmoid approximates 1/(1+e^-x) within FastSigmoidTolerance.
//
//rtoss:f32
//rtoss:noalloc
func fastSigmoid(x float32) float32 {
	return 1 / (1 + fastExp(-x))
}

// rawLogitGate converts a score threshold into its raw-logit preimage:
// sigmoid(t) < thresh iff t < logit(thresh), so candidates are rejected
// on the raw tensor value with zero transcendental work. Thresholds
// outside (0, 1) map to -Inf/+Inf (gate everything in / everything out,
// matching the sigmoid comparison they replace).
func rawLogitGate(thresh float64) float32 {
	if thresh <= 0 {
		return float32(math.Inf(-1))
	}
	if thresh >= 1 {
		return float32(math.Inf(1))
	}
	return float32(math.Log(thresh / (1 - thresh)))
}

// DecodeInto appends the candidates of one image's head tensors to dst
// and returns the extended slice, keeping only candidates whose score
// reaches scoreThresh (same contract as Decode). With exact=false it
// runs the fast float32 path; with exact=true the float64 reference
// decoders. Passing a capacity-retaining dst makes repeated decoding
// allocation-free.
func DecodeInto(dst []Detection, heads []*tensor.Tensor, spec HeadSpec, scoreThresh float64, exact bool) ([]Detection, error) {
	if err := spec.Validate(heads); err != nil {
		return dst, err
	}
	if exact {
		switch spec.Kind {
		case HeadYOLOv5:
			return append(dst, decodeYOLOv5(heads, spec, scoreThresh)...), nil
		default:
			return append(dst, decodeRetinaNet(heads, spec, scoreThresh)...), nil
		}
	}
	switch spec.Kind {
	case HeadYOLOv5:
		return decodeYOLOv5Fast(dst, heads, spec, scoreThresh), nil
	default:
		return decodeRetinaNetFast(dst, heads, spec, scoreThresh), nil
	}
}

// decodeYOLOv5Fast is the float32 rewrite of decodeYOLOv5: per-plane
// slices instead of a per-cell closure, the raw-logit objectness gate,
// and the class argmax on raw logits so each surviving cell pays
// exactly four sigmoids (obj, best class, tx..th share two more pairs).
//
//rtoss:f32
//rtoss:noalloc
func decodeYOLOv5Fast(dst []Detection, heads []*tensor.Tensor, spec HeadSpec, scoreThresh float64) []Detection {
	gate := rawLogitGate(scoreThresh)
	thresh := float32(scoreThresh)
	per := 5 + spec.Classes
	for li, head := range heads {
		lv := spec.Levels[li]
		stride := float32(lv.Stride)
		_, gh, gw := headDims(head)
		data := headData(head)
		plane := gh * gw
		for ai, anchor := range lv.Anchors {
			aw, ah := float32(anchor[0]), float32(anchor[1])
			base := ai * per * plane
			tx := data[base : base+plane]
			ty := data[base+plane : base+2*plane]
			tw := data[base+2*plane : base+3*plane]
			th := data[base+3*plane : base+4*plane]
			to := data[base+4*plane : base+5*plane]
			cls := data[base+5*plane : base+per*plane]
			for cell := 0; cell < plane; cell++ {
				rawObj := to[cell]
				if rawObj < gate {
					continue // score = obj * cls <= obj < thresh
				}
				bestC, bestV := 0, cls[cell]
				for c := 1; c < spec.Classes; c++ {
					if v := cls[c*plane+cell]; v > bestV {
						bestC, bestV = c, v
					}
				}
				score := fastSigmoid(rawObj) * fastSigmoid(bestV)
				if score < thresh {
					continue
				}
				gy := cell / gw
				gx := cell - gy*gw
				bx := (2*fastSigmoid(tx[cell]) - 0.5 + float32(gx)) * stride
				by := (2*fastSigmoid(ty[cell]) - 0.5 + float32(gy)) * stride
				w := 2 * fastSigmoid(tw[cell])
				h := 2 * fastSigmoid(th[cell])
				bw := w * w * aw
				bh := h * h * ah
				dst = append(dst, Detection{
					Box:   Box{float64(bx - bw/2), float64(by - bh/2), float64(bx + bw/2), float64(by + bh/2)},
					Class: bestC,
					Score: float64(score),
				})
			}
		}
	}
	return dst
}

// decodeRetinaNetFast is the float32 rewrite of decodeRetinaNet: the
// class argmax runs on raw logits (one sigmoid per surviving anchor
// instead of Classes sigmoids per anchor) and the raw-logit gate skips
// the argmax losers' box math entirely.
//
//rtoss:f32
//rtoss:noalloc
func decodeRetinaNetFast(dst []Detection, heads []*tensor.Tensor, spec HeadSpec, scoreThresh float64) []Detection {
	gate := rawLogitGate(scoreThresh)
	lv := spec.Levels[0]
	stride := float32(lv.Stride)
	cls, reg := heads[0], heads[1]
	_, gh, gw := headDims(cls)
	cdata, rdata := headData(cls), headData(reg)
	plane := gh * gw
	for ai, anchor := range lv.Anchors {
		aw, ah := float32(anchor[0]), float32(anchor[1])
		cbase := ai * spec.Classes * plane
		rbase := ai * 4 * plane
		for cell := 0; cell < plane; cell++ {
			bestC, bestV := 0, cdata[cbase+cell]
			for c := 1; c < spec.Classes; c++ {
				if v := cdata[cbase+c*plane+cell]; v > bestV {
					bestC, bestV = c, v
				}
			}
			if bestV < gate {
				continue
			}
			gy := cell / gw
			gx := cell - gy*gw
			dx := rdata[rbase+cell]
			dy := rdata[rbase+plane+cell]
			dw := rdata[rbase+2*plane+cell]
			dh := rdata[rbase+3*plane+cell]
			if dw > maxLogDelta {
				dw = maxLogDelta
			}
			if dh > maxLogDelta {
				dh = maxLogDelta
			}
			cx := (float32(gx)+0.5)*stride + dx*aw
			cy := (float32(gy)+0.5)*stride + dy*ah
			w := aw * fastExp(dw)
			h := ah * fastExp(dh)
			dst = append(dst, Detection{
				Box:   Box{float64(cx - w/2), float64(cy - h/2), float64(cx + w/2), float64(cy + h/2)},
				Class: bestC,
				Score: float64(fastSigmoid(bestV)),
			})
		}
	}
	return dst
}

// ppScratch is the pooled per-call state of PostprocessInto: the
// candidate buffer plus the NMS bucketing arrays. sync.Pool keeps one
// warm scratch per worker in steady state, so serving traffic decodes
// without touching the allocator.
type ppScratch struct {
	cands []Detection
	keep  []bool  // per-candidate NMS survival flags
	idx   []int32 // candidate indices, counting-sorted by class
	off   []int32 // class bucket offsets into idx (len classes+1)
	cur   []int32 // per-class fill cursors (len classes)
}

var ppPool = sync.Pool{New: func() any { return new(ppScratch) }}

// sort.Interface over s.cands: descending score, stable.
func (s *ppScratch) Len() int           { return len(s.cands) }
func (s *ppScratch) Less(i, j int) bool { return s.cands[i].Score > s.cands[j].Score }
func (s *ppScratch) Swap(i, j int)      { s.cands[i], s.cands[j] = s.cands[j], s.cands[i] }

// selectTopK partially sorts d so d[:k] holds the k highest-scoring
// detections (in arbitrary order) without allocating: iterative
// quickselect with median-of-three pivots. Ties at the cut are broken
// deterministically by position.
//
//rtoss:noalloc
func selectTopK(d []Detection, k int) {
	lo, hi := 0, len(d)-1
	for lo < hi {
		// Median-of-three pivot, moved to d[lo].
		mid := lo + (hi-lo)/2
		if d[mid].Score > d[lo].Score {
			d[mid], d[lo] = d[lo], d[mid]
		}
		if d[hi].Score > d[lo].Score {
			d[hi], d[lo] = d[lo], d[hi]
		}
		if d[hi].Score > d[mid].Score {
			d[hi], d[mid] = d[mid], d[hi]
		}
		d[lo], d[mid] = d[mid], d[lo]
		pivot := d[lo].Score
		i, j := lo, hi+1
		for {
			for i++; i <= hi && d[i].Score > pivot; i++ {
			}
			for j--; d[j].Score < pivot; j-- {
			}
			if i >= j {
				break
			}
			d[i], d[j] = d[j], d[i]
		}
		d[lo], d[j] = d[j], d[lo]
		switch {
		case j == k || j == k-1:
			return
		case j > k:
			hi = j - 1
		default:
			lo = j + 1
		}
	}
}

// nmsBucketed runs class-aware NMS over score-sorted candidates using
// per-class buckets, so the quadratic scan only ever compares same-class
// pairs. Survival is recorded in s.keep; candidate order is untouched.
//
//rtoss:noalloc
func (s *ppScratch) nmsBucketed(classes int, iouThresh float64) {
	n := len(s.cands)
	if cap(s.keep) < n {
		s.keep = make([]bool, n) //rtoss:allow noalloc (amortized scratch grow)
		s.idx = make([]int32, n) //rtoss:allow noalloc (amortized scratch grow)
	}
	s.keep = s.keep[:n]
	s.idx = s.idx[:n]
	for i := range s.keep {
		s.keep[i] = true
	}
	if cap(s.off) < classes+1 {
		s.off = make([]int32, classes+1) //rtoss:allow noalloc (amortized scratch grow)
		s.cur = make([]int32, classes)   //rtoss:allow noalloc (amortized scratch grow)
	}
	s.off = s.off[:classes+1]
	s.cur = s.cur[:classes]
	for i := range s.off {
		s.off[i] = 0
	}
	// Counting sort by class, preserving the descending-score order
	// within each bucket.
	for i := range s.cands {
		s.off[s.cands[i].Class+1]++
	}
	for c := 0; c < classes; c++ {
		s.off[c+1] += s.off[c]
		s.cur[c] = s.off[c]
	}
	for i := range s.cands {
		c := s.cands[i].Class
		s.idx[s.cur[c]] = int32(i)
		s.cur[c]++
	}
	for c := 0; c < classes; c++ {
		bucket := s.idx[s.off[c]:s.off[c+1]]
		for a := 0; a < len(bucket); a++ {
			i := bucket[a]
			if !s.keep[i] {
				continue
			}
			bi := s.cands[i].Box
			for b := a + 1; b < len(bucket); b++ {
				j := bucket[b]
				if s.keep[j] && IoU(bi, s.cands[j].Box) > iouThresh {
					s.keep[j] = false
				}
			}
		}
	}
}

// sortedDescending reports whether d is already in descending score
// order — the structural invariant the hot path maintains for free.
//
//rtoss:noalloc
func sortedDescending(d []Detection) bool {
	for i := 1; i < len(d); i++ {
		if d[i].Score > d[i-1].Score {
			return false
		}
	}
	return true
}
