package detect

import (
	"testing"

	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// bench_test.go measures the post-network hot path: head decoding and
// the full Postprocess stage on realistic zoo-shaped head tensors. All
// benchmarks report allocations and run under -short (they are the
// benchmark-compile gate's workload), so `go test -short -run=NONE
// -bench=. -benchtime=1x` keeps them from rotting.
//
// The headline number is BenchmarkPostprocess: 640x640 YOLOv5s heads
// (strides 8/16/32, 3 anchors, 8 classes — 25200 candidate slots)
// through decode -> TopK -> class-bucketed NMS -> un-letterbox. The
// PR5 acceptance bar is >= 2x over the pre-PR5 scalar float64 pipeline
// with 0 allocs/op in steady state.

// benchYOLOSpec mirrors models.YOLOv5sHead(8) without importing models
// (which would cycle: models -> detect).
func benchYOLOSpec() HeadSpec {
	anchors := [3][3][2]float64{
		{{10, 13}, {16, 30}, {33, 23}},
		{{30, 61}, {62, 45}, {59, 119}},
		{{116, 90}, {156, 198}, {373, 326}},
	}
	spec := HeadSpec{Kind: HeadYOLOv5, Classes: 8}
	for i, stride := range []int{8, 16, 32} {
		spec.Levels = append(spec.Levels, HeadLevel{Stride: stride, Anchors: anchors[i][:]})
	}
	return spec
}

// benchRetinaSpec mirrors models.RetinaNetHead(8)'s single stride-8
// level with a 9-anchor set (sizes only matter for box math, not cost).
func benchRetinaSpec() HeadSpec {
	lv := HeadLevel{Stride: 8}
	for _, s := range []float64{32, 40, 51} {
		for _, r := range []float64{0.5, 1, 2} {
			lv.Anchors = append(lv.Anchors, [2]float64{s / r, s * r})
		}
	}
	return HeadSpec{Kind: HeadRetinaNet, Classes: 8, Levels: []HeadLevel{lv}}
}

// benchYOLOHeads builds 640x640 YOLOv5s-shaped head tensors with a
// realistic activation mix: objectness logits mostly deep below the
// default 0.25 threshold (logit -1.1) so the pre-gate has something to
// skip, with enough survivors to exercise TopK and NMS.
func benchYOLOHeads(spec HeadSpec, res int) []*tensor.Tensor {
	r := rng.New(0xdec0de)
	heads := make([]*tensor.Tensor, len(spec.Levels))
	per := 5 + spec.Classes
	for li, lv := range spec.Levels {
		g := res / lv.Stride
		h := tensor.New(len(lv.Anchors)*per, g, g)
		plane := g * g
		for i := range h.Data {
			h.Data[i] = float32(r.Range(-3, 3))
		}
		// Overwrite the objectness planes with a skewed distribution:
		// ~14% of cells pass the default-threshold raw-logit gate.
		for ai := 0; ai < len(lv.Anchors); ai++ {
			obj := h.Data[ai*per*plane+4*plane : ai*per*plane+5*plane]
			for i := range obj {
				obj[i] = float32(r.Range(-7, 0))
			}
		}
		heads[li] = h
	}
	return heads
}

// benchRetinaHeads builds 640x640 RetinaNet-shaped [cls, reg] maps with
// class logits skewed the same way as the YOLO objectness planes.
func benchRetinaHeads(spec HeadSpec, res int) []*tensor.Tensor {
	r := rng.New(0x4e71a)
	g := res / spec.Levels[0].Stride
	a := len(spec.Levels[0].Anchors)
	cls := tensor.New(a*spec.Classes, g, g)
	reg := tensor.New(a*4, g, g)
	for i := range cls.Data {
		cls.Data[i] = float32(r.Range(-7, 0))
	}
	for i := range reg.Data {
		reg.Data[i] = float32(r.Range(-1, 1))
	}
	return []*tensor.Tensor{cls, reg}
}

// benchDecode measures DecodeInto in the steady-state serving pattern:
// a capacity-retaining destination buffer reused across calls.
func benchDecode(b *testing.B, spec HeadSpec, heads []*tensor.Tensor, exact bool) {
	b.Helper()
	var dst []Detection
	var err error
	if dst, err = DecodeInto(dst, heads, spec, 0.25, exact); err != nil {
		b.Fatal(err) // warm-up: grow dst and the pooled scratch off the clock
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = DecodeInto(dst[:0], heads, spec, 0.25, exact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeYOLOv5(b *testing.B) {
	spec := benchYOLOSpec()
	benchDecode(b, spec, benchYOLOHeads(spec, 640), false)
}

func BenchmarkDecodeYOLOv5Exact(b *testing.B) {
	spec := benchYOLOSpec()
	benchDecode(b, spec, benchYOLOHeads(spec, 640), true)
}

func BenchmarkDecodeRetinaNet(b *testing.B) {
	spec := benchRetinaSpec()
	benchDecode(b, spec, benchRetinaHeads(spec, 640), false)
}

func BenchmarkDecodeRetinaNetExact(b *testing.B) {
	spec := benchRetinaSpec()
	benchDecode(b, spec, benchRetinaHeads(spec, 640), true)
}

// benchPostprocess measures the full post-network stage on 640x640
// YOLOv5s heads with a non-trivial letterbox mapping (1242x375
// KITTI-aspect source), reusing the output buffer across iterations —
// the exact pattern the serving executors run.
func benchPostprocess(b *testing.B, exact bool) {
	b.Helper()
	spec := benchYOLOSpec()
	heads := benchYOLOHeads(spec, 640)
	_, meta := tensor.LetterboxImage(tensor.New(3, 375, 1242), 640, 640, tensor.LetterboxFill)
	cfg := Config{Spec: spec, ExactMath: exact}
	var dst []Detection
	var err error
	if dst, err = PostprocessInto(dst, heads, meta, cfg); err != nil {
		b.Fatal(err) // warm-up: grow dst and the pooled scratch off the clock
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = PostprocessInto(dst[:0], heads, meta, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPostprocess is the PR5 acceptance benchmark: >= 2x over the
// pre-PR5 scalar float64 pipeline with 0 allocs/op in steady state.
func BenchmarkPostprocess(b *testing.B) { benchPostprocess(b, false) }

// BenchmarkPostprocessExact is the same workload through the float64
// reference decoders (Config.ExactMath) — the pre-PR5 math, kept as
// the comparison point and the bitwise-reproducibility escape hatch.
func BenchmarkPostprocessExact(b *testing.B) { benchPostprocess(b, true) }
