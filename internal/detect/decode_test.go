package detect

import (
	"math"
	"testing"

	"rtoss/internal/tensor"
)

// yoloSpec1 is a minimal single-level, single-anchor YOLO spec for
// golden-value tests.
func yoloSpec1() HeadSpec {
	return HeadSpec{
		Kind:    HeadYOLOv5,
		Classes: 1,
		Levels:  []HeadLevel{{Stride: 8, Anchors: [][2]float64{{16, 16}}}},
	}
}

func boxClose(t *testing.T, got, want Box, eps float64) {
	t.Helper()
	if math.Abs(got.X1-want.X1) > eps || math.Abs(got.Y1-want.Y1) > eps ||
		math.Abs(got.X2-want.X2) > eps || math.Abs(got.Y2-want.Y2) > eps {
		t.Errorf("box = %v, want %v (eps %g)", got, want, eps)
	}
}

// TestDecodeYOLOGolden pins the YOLOv5 v6 box parameterisation on a
// hand-computed head tensor: raw (tx,ty,tw,th)=(0,0,0,0) at grid cell
// (1,0) with anchor 16x16 and stride 8 places a 16x16 box at centre
// (12,4); obj=2 and cls=1 give score sigmoid(2)*sigmoid(1).
func TestDecodeYOLOGolden(t *testing.T) {
	head := tensor.New(1, 6, 2, 2) // [tx ty tw th obj cls] planes of 2x2
	const cell = 1                 // (gx, gy) = (1, 0)
	head.Data[4*4+cell] = 2        // obj
	head.Data[5*4+cell] = 1        // class 0
	dets, err := Decode([]*tensor.Tensor{head}, yoloSpec1(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1 (zero cells score 0.25 < 0.5)", len(dets))
	}
	d := dets[0]
	if d.Class != 0 {
		t.Errorf("class = %d, want 0", d.Class)
	}
	if math.Abs(d.Score-0.6439142598879722) > 1e-9 {
		t.Errorf("score = %.12f, want sigmoid(2)*sigmoid(1) = 0.643914259888", d.Score)
	}
	boxClose(t, d.Box, Box{4, -4, 20, 12}, 1e-9)
}

// TestDecodeYOLOSizeParam pins the (2*sigmoid)^2 size term: tw with
// sigmoid(tw)=x gives width (2x)^2 * anchor.
func TestDecodeYOLOSizeParam(t *testing.T) {
	head := tensor.New(1, 6, 1, 1)
	head.Data[4] = 10 // obj ~ 1
	head.Data[5] = 10 // cls ~ 1
	big := float32(20)
	head.Data[2] = big // tw: sigmoid -> 1, width -> 4*anchorW
	dets, err := Decode([]*tensor.Tensor{head}, yoloSpec1(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	if w := dets[0].Box.Width(); math.Abs(w-64) > 1e-3 {
		t.Errorf("width = %v, want ~64 (= (2*1)^2 * 16)", w)
	}
	if h := dets[0].Box.Height(); math.Abs(h-16) > 1e-6 {
		t.Errorf("height = %v, want 16", h)
	}
}

func retinaSpec1() HeadSpec {
	return HeadSpec{
		Kind:    HeadRetinaNet,
		Classes: 2,
		Levels:  []HeadLevel{{Stride: 8, Anchors: [][2]float64{{16, 16}}}},
	}
}

// TestDecodeRetinaGolden pins the anchor-delta parameterisation:
// dx=0.5 shifts the centre by half the anchor width, dw=ln 2 doubles
// the width, and the score is the best class sigmoid.
func TestDecodeRetinaGolden(t *testing.T) {
	cls := tensor.New(1, 2, 1, 2) // 2 classes x 1 anchor, grid 1x2
	reg := tensor.New(1, 4, 1, 2)
	cls.Data[0] = 1.2 // class 0 at cell 0
	cls.Data[2] = -1  // class 1 at cell 0
	reg.Data[0] = 0.5 // dx
	reg.Data[2] = -0.25
	reg.Data[4] = float32(math.Log(2)) // dw
	dets, err := Decode([]*tensor.Tensor{cls, reg}, retinaSpec1(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1 (zero cell scores 0.5 < 0.6)", len(dets))
	}
	d := dets[0]
	if d.Class != 0 {
		t.Errorf("class = %d, want 0", d.Class)
	}
	if math.Abs(d.Score-0.7685247834990175) > 1e-7 {
		t.Errorf("score = %.12f, want sigmoid(1.2) = 0.768524783499", d.Score)
	}
	// cx = 4 + 0.5*16 = 12, cy = 4 - 0.25*16 = 0, w = 32, h = 16.
	boxClose(t, d.Box, Box{-4, -8, 28, 8}, 1e-4)
}

// TestDecodeRetinaClampsLogDelta guards the exp() clamp on size deltas.
func TestDecodeRetinaClampsLogDelta(t *testing.T) {
	cls := tensor.New(1, 2, 1, 1)
	reg := tensor.New(1, 4, 1, 1)
	cls.Data[0] = 5
	reg.Data[2] = 100 // dw: would be e^100 without the clamp
	dets, err := Decode([]*tensor.Tensor{cls, reg}, retinaSpec1(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	want := 16 * math.Exp(maxLogDelta)
	if w := dets[0].Box.Width(); math.Abs(w-want) > 1e-6 {
		t.Errorf("width = %v, want clamped %v", w, want)
	}
}

func TestDecodeValidatesChannels(t *testing.T) {
	// 5 channels cannot be 1 anchor x (5+1).
	bad := tensor.New(1, 5, 2, 2)
	if _, err := Decode([]*tensor.Tensor{bad}, yoloSpec1(), 0.5); err == nil {
		t.Error("YOLO decode accepted a mis-shaped head")
	}
	cls := tensor.New(1, 2, 2, 2)
	reg := tensor.New(1, 3, 2, 2) // not anchors*4
	if _, err := Decode([]*tensor.Tensor{cls, reg}, retinaSpec1(), 0.5); err == nil {
		t.Error("RetinaNet decode accepted a mis-shaped reg head")
	}
	if _, err := Decode([]*tensor.Tensor{cls}, retinaSpec1(), 0.5); err == nil {
		t.Error("RetinaNet decode accepted a single head")
	}
}

func TestNMSClassAware(t *testing.T) {
	a := Detection{Box: Box{0, 0, 10, 10}, Class: 0, Score: 0.9}
	b := Detection{Box: Box{1, 1, 11, 11}, Class: 0, Score: 0.8}   // overlaps a, same class
	c := Detection{Box: Box{1, 1, 11, 11}, Class: 1, Score: 0.7}   // overlaps a, other class
	d := Detection{Box: Box{50, 50, 60, 60}, Class: 0, Score: 0.6} // far away
	kept := NMS([]Detection{a, b, c, d}, 0.45)
	if len(kept) != 3 {
		t.Fatalf("kept %d, want 3 (b suppressed by a; c survives on class)", len(kept))
	}
	for i, want := range []Detection{a, c, d} {
		if kept[i] != want {
			t.Errorf("kept[%d] = %+v, want %+v", i, kept[i], want)
		}
	}
}

// TestNMSTieBreak pins the equal-score behaviour: the stable sort keeps
// input order, so the earlier of two identical detections wins.
func TestNMSTieBreak(t *testing.T) {
	first := Detection{Box: Box{0, 0, 10, 10}, Class: 0, Score: 0.5}
	second := Detection{Box: Box{0.5, 0, 10.5, 10}, Class: 0, Score: 0.5}
	kept := NMS([]Detection{first, second}, 0.45)
	if len(kept) != 1 {
		t.Fatalf("kept %d, want 1", len(kept))
	}
	if kept[0] != first {
		t.Errorf("tie broke to %+v, want the first input %+v", kept[0], first)
	}
	// Identical boxes (IoU exactly 1) must also suppress.
	kept = NMS([]Detection{first, first}, 0.99)
	if len(kept) != 1 {
		t.Errorf("identical boxes: kept %d, want 1", len(kept))
	}
}

func TestTopK(t *testing.T) {
	dets := []Detection{
		{Score: 0.1}, {Score: 0.9}, {Score: 0.5}, {Score: 0.9},
	}
	top := TopK(dets, 2)
	if len(top) != 2 || top[0].Score != 0.9 || top[1].Score != 0.9 {
		t.Fatalf("TopK(2) = %+v", top)
	}
	if got := TopK(dets, 10); len(got) != 4 {
		t.Fatalf("TopK over length changed size: %d", len(got))
	}
}

// TestPostprocessUnletterboxes runs the full post-network pipeline with
// a non-trivial letterbox mapping and checks boxes land in source
// pixels (and are clipped to the source bounds).
func TestPostprocessUnletterboxes(t *testing.T) {
	// Source 100x50 onto a 16x16 canvas: scale 0.16, pad (0, 4).
	_, meta := tensor.LetterboxImage(tensor.New(3, 50, 100), 16, 16, 0)
	head := tensor.New(1, 6, 2, 2) // stride-8 grid over the 16x16 canvas
	head.Data[4*4+0] = 4           // obj at cell (0,0)
	head.Data[5*4+0] = 4           // class
	dets, err := Postprocess([]*tensor.Tensor{head}, meta, Config{Spec: yoloSpec1(), ScoreThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	// Model-space box: centre (4,4) size 16 -> [-4,-4,12,12]; source
	// space: x/0.16, (y-4)/0.16 -> [-25,-50,75,50] clipped to 100x50.
	boxClose(t, dets[0].Box, Box{0, 0, 75, 50}, 1e-6)
}
