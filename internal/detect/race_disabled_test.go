//go:build !race

package detect

const raceEnabled = false
