package detect

import (
	"sort"
	"time"

	"rtoss/internal/tensor"
)

// pipeline.go assembles the primitives into the full post-network
// detection pipeline: decode -> score filter -> class-aware NMS ->
// un-letterbox. The image -> boxes Detector that feeds this from a
// compiled engine.Program lives in the root rtoss package (this
// package stays engine-free so internal/models can export HeadSpecs
// without an import cycle).

// Config parameterises the post-network detection pipeline. Zero (or
// negative) values select the defaults — thresholds therefore live in
// (0, 1]; an explicit 0 cannot be distinguished from "unset".
type Config struct {
	// Spec is the model's head decode metadata (required).
	Spec HeadSpec
	// ScoreThreshold drops candidates below this confidence
	// (default 0.25; must be > 0, see above).
	ScoreThreshold float64
	// IoUThreshold is the class-aware NMS overlap cutoff
	// (default 0.45; must be > 0, see above).
	IoUThreshold float64
	// MaxCandidates bounds the boxes entering NMS, keeping the
	// highest-scoring ones (default 1000; NMS is quadratic per class).
	MaxCandidates int
	// MaxDetections bounds the final detection count (default 300).
	MaxDetections int
	// ExactMath routes decoding through the float64 math.Exp reference
	// decoders instead of the default fast float32 path (polynomial
	// sigmoid within FastSigmoidTolerance, raw-logit gating, pooled
	// scratch). The fast path is the serving default; pin ExactMath
	// when bitwise float64 reproducibility matters more than speed.
	ExactMath bool
}

// WithDefaults returns the config with zero values replaced by the
// documented defaults.
func (c Config) WithDefaults() Config {
	if c.ScoreThreshold <= 0 {
		c.ScoreThreshold = 0.25
	}
	if c.IoUThreshold <= 0 {
		c.IoUThreshold = 0.45
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 1000
	}
	if c.MaxDetections <= 0 {
		c.MaxDetections = 300
	}
	return c
}

// TopK returns the k highest-scoring detections (stable: ties keep
// their input order). It returns the input slice when k >= len.
func TopK(dets []Detection, k int) []Detection {
	if k >= len(dets) {
		return dets
	}
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	return sorted[:k]
}

// Postprocess runs the post-network pipeline on one image's head
// tensors: decode to model-space candidates, keep the best
// MaxCandidates, class-aware NMS, map boxes back to source-image
// pixels via the letterbox metadata, and clip to the source bounds.
// The result is in descending score order for every candidate count.
func Postprocess(heads []*tensor.Tensor, meta tensor.LetterboxMeta, cfg Config) ([]Detection, error) {
	return PostprocessInto(nil, heads, meta, cfg)
}

// PostStats is the work accounting of one Postprocess call — the
// per-stage counters the serving layer aggregates into its Stats.
type PostStats struct {
	// Candidates is how many decoded boxes entered TopK/NMS.
	Candidates int
	// Kept is how many boxes were emitted after NMS and clipping.
	Kept int
	// Decode covers head decoding plus TopK selection and sorting.
	Decode time.Duration
	// NMS covers class-bucketed suppression and un-letterboxing.
	NMS time.Duration
}

// PostprocessInto is Postprocess appending into dst (which may be nil):
// passing a capacity-retaining buffer makes the whole post-network
// stage allocation-free in steady state — candidates, TopK selection
// and NMS bookkeeping all live in pooled scratch. The appended region
// is guaranteed to be in descending score order regardless of how many
// candidates the decode produced.
//
//rtoss:noalloc
func PostprocessInto(dst []Detection, heads []*tensor.Tensor, meta tensor.LetterboxMeta, cfg Config) ([]Detection, error) {
	dst, _, err := PostprocessStats(dst, heads, meta, cfg)
	return dst, err
}

// PostprocessStats is PostprocessInto returning the per-stage work
// counters alongside the detections.
//
//rtoss:noalloc
func PostprocessStats(dst []Detection, heads []*tensor.Tensor, meta tensor.LetterboxMeta, cfg Config) ([]Detection, PostStats, error) {
	var st PostStats
	cfg = cfg.WithDefaults()
	t0 := time.Now()
	s := ppPool.Get().(*ppScratch)
	defer ppPool.Put(s)
	var err error
	s.cands, err = DecodeInto(s.cands[:0], heads, cfg.Spec, cfg.ScoreThreshold, cfg.ExactMath)
	if err != nil {
		return dst, st, err
	}
	st.Candidates = len(s.cands)
	if len(s.cands) > cfg.MaxCandidates {
		selectTopK(s.cands, cfg.MaxCandidates)
		s.cands = s.cands[:cfg.MaxCandidates]
	}
	// Sorting before NMS both drives the greedy suppression and makes
	// the emitted order descending by construction — the ordering
	// contract no longer depends on NMS internals.
	sort.Stable(s)
	t1 := time.Now()
	st.Decode = t1.Sub(t0)
	s.nmsBucketed(cfg.Spec.Classes, cfg.IoUThreshold)
	base := len(dst)
	srcW, srcH := float64(meta.SrcW), float64(meta.SrcH)
	emitted := 0
	for i := range s.cands {
		if !s.keep[i] {
			continue
		}
		if emitted == cfg.MaxDetections {
			break
		}
		emitted++
		d := s.cands[i]
		x1, y1 := meta.ToSource(d.Box.X1, d.Box.Y1)
		x2, y2 := meta.ToSource(d.Box.X2, d.Box.Y2)
		d.Box = NewBox(x1, y1, x2, y2).Clip(srcW, srcH)
		if d.Box.Area() > 0 { // drop boxes clipped away entirely
			dst = append(dst, d)
		}
	}
	// Structural backstop for the ordering guarantee: the emit loop
	// walks a sorted buffer, so this never fires in practice, but the
	// contract survives future refactors of the stages above.
	if out := dst[base:]; !sortedDescending(out) {
		//rtoss:allow noalloc (cold backstop; never fires while the emit loop walks sorted scratch)
		sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	}
	st.Kept = len(dst) - base
	st.NMS = time.Since(t1)
	return dst, st, nil
}

// Timing is the per-stage wall-clock breakdown of one Detect call.
type Timing struct {
	// Ingest covers image-bytes decode (PNM/PNG/JPEG → float tensor).
	// Zero when the caller handed over an already-decoded tensor.
	Ingest time.Duration
	// Preprocess covers letterbox resize + NCHW staging.
	Preprocess time.Duration
	// Forward covers the compiled Program's forward pass.
	Forward time.Duration
	// Decode covers head decoding, NMS and un-letterboxing.
	Decode time.Duration
}

// Total returns the end-to-end pipeline time.
func (t Timing) Total() time.Duration { return t.Ingest + t.Preprocess + t.Forward + t.Decode }

// Result is one end-to-end detection call's output.
type Result struct {
	// Detections are the kept boxes in source-image pixel coordinates,
	// in descending score order.
	Detections []Detection
	// SrcW, SrcH are the input image's dimensions.
	SrcW, SrcH int
	// Timing is the per-stage latency breakdown.
	Timing Timing
}
