package detect

import (
	"sort"
	"time"

	"rtoss/internal/tensor"
)

// pipeline.go assembles the primitives into the full post-network
// detection pipeline: decode -> score filter -> class-aware NMS ->
// un-letterbox. The image -> boxes Detector that feeds this from a
// compiled engine.Program lives in the root rtoss package (this
// package stays engine-free so internal/models can export HeadSpecs
// without an import cycle).

// Config parameterises the post-network detection pipeline. Zero (or
// negative) values select the defaults — thresholds therefore live in
// (0, 1]; an explicit 0 cannot be distinguished from "unset".
type Config struct {
	// Spec is the model's head decode metadata (required).
	Spec HeadSpec
	// ScoreThreshold drops candidates below this confidence
	// (default 0.25; must be > 0, see above).
	ScoreThreshold float64
	// IoUThreshold is the class-aware NMS overlap cutoff
	// (default 0.45; must be > 0, see above).
	IoUThreshold float64
	// MaxCandidates bounds the boxes entering NMS, keeping the
	// highest-scoring ones (default 1000; NMS is quadratic).
	MaxCandidates int
	// MaxDetections bounds the final detection count (default 300).
	MaxDetections int
}

// WithDefaults returns the config with zero values replaced by the
// documented defaults.
func (c Config) WithDefaults() Config {
	if c.ScoreThreshold <= 0 {
		c.ScoreThreshold = 0.25
	}
	if c.IoUThreshold <= 0 {
		c.IoUThreshold = 0.45
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 1000
	}
	if c.MaxDetections <= 0 {
		c.MaxDetections = 300
	}
	return c
}

// TopK returns the k highest-scoring detections (stable: ties keep
// their input order). It returns the input slice when k >= len.
func TopK(dets []Detection, k int) []Detection {
	if k >= len(dets) {
		return dets
	}
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	return sorted[:k]
}

// Postprocess runs the post-network pipeline on one image's head
// tensors: decode to model-space candidates, keep the best
// MaxCandidates, class-aware NMS, map boxes back to source-image
// pixels via the letterbox metadata, and clip to the source bounds.
func Postprocess(heads []*tensor.Tensor, meta tensor.LetterboxMeta, cfg Config) ([]Detection, error) {
	cfg = cfg.WithDefaults()
	cands, err := Decode(heads, cfg.Spec, cfg.ScoreThreshold)
	if err != nil {
		return nil, err
	}
	cands = TopK(cands, cfg.MaxCandidates)
	kept := NMS(cands, cfg.IoUThreshold)
	if len(kept) > cfg.MaxDetections {
		kept = kept[:cfg.MaxDetections]
	}
	srcW, srcH := float64(meta.SrcW), float64(meta.SrcH)
	out := kept[:0]
	for _, d := range kept {
		x1, y1 := meta.ToSource(d.Box.X1, d.Box.Y1)
		x2, y2 := meta.ToSource(d.Box.X2, d.Box.Y2)
		d.Box = NewBox(x1, y1, x2, y2).Clip(srcW, srcH)
		if d.Box.Area() > 0 { // drop boxes clipped away entirely
			out = append(out, d)
		}
	}
	return out, nil
}

// Timing is the per-stage wall-clock breakdown of one Detect call.
type Timing struct {
	// Preprocess covers letterbox resize + NCHW staging.
	Preprocess time.Duration
	// Forward covers the compiled Program's forward pass.
	Forward time.Duration
	// Decode covers head decoding, NMS and un-letterboxing.
	Decode time.Duration
}

// Total returns the end-to-end pipeline time.
func (t Timing) Total() time.Duration { return t.Preprocess + t.Forward + t.Decode }

// Result is one end-to-end detection call's output.
type Result struct {
	// Detections are the kept boxes in source-image pixel coordinates,
	// in descending score order.
	Detections []Detection
	// SrcW, SrcH are the input image's dimensions.
	SrcW, SrcH int
	// Timing is the per-stage latency breakdown.
	Timing Timing
}
