package detect

import (
	"math"
	"sort"
	"testing"

	"rtoss/internal/rng"
	"rtoss/internal/tensor"
)

// fast_test.go covers the float32 hot path's contracts: the fast
// sigmoid's documented tolerance, fast-vs-exact decode agreement,
// quickselect correctness, and the descending-score ordering guarantee
// of Postprocess for every candidate count.

// exactSigmoid is the float64 reference the tolerance is defined
// against.
func exactSigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// TestFastSigmoidTolerance is the property test behind
// FastSigmoidTolerance: sweep the logit range densely plus a random
// float32 sample, and bound the max abs error against math.Exp.
func TestFastSigmoidTolerance(t *testing.T) {
	check := func(x float32) float64 {
		return math.Abs(float64(fastSigmoid(x)) - exactSigmoid(float64(x)))
	}
	var worst float64
	var worstAt float32
	// Dense sweep over the range where sigmoid is not saturated.
	for x := float32(-40); x <= 40; x += 1e-3 {
		if d := check(x); d > worst {
			worst, worstAt = d, x
		}
	}
	// Random sample across the full finite float32 range (saturation
	// must also stay within tolerance, not produce Inf/NaN).
	r := rng.New(0x51617)
	for i := 0; i < 200000; i++ {
		x := float32(r.Range(-3e38, 3e38))
		y := fastSigmoid(x)
		if math.IsNaN(float64(y)) || math.IsInf(float64(y), 0) {
			t.Fatalf("fastSigmoid(%g) = %g", x, y)
		}
		if d := check(x); d > worst {
			worst, worstAt = d, x
		}
	}
	if worst > FastSigmoidTolerance {
		t.Errorf("max abs error %.3g at x=%g exceeds FastSigmoidTolerance %.0e", worst, worstAt, FastSigmoidTolerance)
	}
}

// TestFastSigmoidMonotonic: the raw-logit gate and argmax substitutions
// are only exact if the approximation never inverts an ordering the
// decode depends on at the gate boundary; spot-check monotonicity on a
// fine grid.
func TestFastSigmoidMonotonic(t *testing.T) {
	prev := fastSigmoid(-30)
	for x := float32(-30); x <= 30; x += 1e-2 {
		y := fastSigmoid(x)
		if y < prev {
			t.Fatalf("fastSigmoid not monotone at x=%g: %g < %g", x, y, prev)
		}
		prev = y
	}
}

// TestFastExpAgainstMathExp bounds the relative error of the
// polynomial exponential on the range the RetinaNet decode feeds it.
func TestFastExpAgainstMathExp(t *testing.T) {
	// The polynomial's truncation error is ~1.2e-7; float32 rounding in
	// the Horner chain adds a few ulp on top, so 2e-6 is a safe bound
	// (and still 5x tighter than FastSigmoidTolerance needs).
	for x := float32(-20); x <= 4; x += 1e-3 {
		want := math.Exp(float64(x))
		got := float64(fastExp(x))
		if rel := math.Abs(got-want) / want; rel > 2e-6 {
			t.Fatalf("fastExp(%g) relative error %.3g", x, rel)
		}
	}
}

// TestDecodeFastMatchesExact: on random heads, the fast path must
// produce the same candidate set as the reference decoders (same
// classes, boxes within the sigmoid tolerance amplified by the box
// parameterisation), for both head families.
func TestDecodeFastMatchesExact(t *testing.T) {
	specs := map[string]HeadSpec{
		"yolo": {
			Kind:    HeadYOLOv5,
			Classes: 4,
			Levels: []HeadLevel{
				{Stride: 8, Anchors: [][2]float64{{10, 13}, {33, 23}}},
				{Stride: 16, Anchors: [][2]float64{{30, 61}, {59, 119}}},
			},
		},
		"retina": retinaSpec1(),
	}
	build := func(spec HeadSpec, seed uint64) []*tensor.Tensor {
		r := rng.New(seed)
		if spec.Kind == HeadYOLOv5 {
			heads := make([]*tensor.Tensor, len(spec.Levels))
			for li, lv := range spec.Levels {
				g := 64 / lv.Stride
				h := tensor.New(len(lv.Anchors)*(5+spec.Classes), g, g)
				for i := range h.Data {
					h.Data[i] = float32(r.Range(-4, 4))
				}
				heads[li] = h
			}
			return heads
		}
		g := 64 / spec.Levels[0].Stride
		a := len(spec.Levels[0].Anchors)
		cls := tensor.New(a*spec.Classes, g, g)
		reg := tensor.New(a*4, g, g)
		for i := range cls.Data {
			cls.Data[i] = float32(r.Range(-4, 4))
		}
		for i := range reg.Data {
			reg.Data[i] = float32(r.Range(-2, 5)) // exercises the exp clamp
		}
		return []*tensor.Tensor{cls, reg}
	}
	for name, spec := range specs {
		heads := build(spec, 0xfa57)
		exact, err := DecodeInto(nil, heads, spec, 0.3, true)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := DecodeInto(nil, heads, spec, 0.3, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 {
			t.Fatalf("%s: exact decode produced no candidates; comparison is vacuous", name)
		}
		if len(exact) != len(fast) {
			t.Fatalf("%s: exact %d candidates, fast %d", name, len(exact), len(fast))
		}
		for i := range exact {
			e, f := exact[i], fast[i]
			if e.Class != f.Class {
				t.Errorf("%s cand %d: class %d vs %d", name, i, e.Class, f.Class)
			}
			if d := math.Abs(e.Score - f.Score); d > 2*FastSigmoidTolerance {
				t.Errorf("%s cand %d: score diff %g", name, i, d)
			}
			for j, delta := range []float64{
				e.Box.X1 - f.Box.X1, e.Box.Y1 - f.Box.Y1,
				e.Box.X2 - f.Box.X2, e.Box.Y2 - f.Box.Y2,
			} {
				// Box coordinates amplify the sigmoid error by the
				// stride / anchor scale; 1e-2 px is far below anything
				// an IoU threshold can see.
				if math.Abs(delta) > 1e-2 {
					t.Errorf("%s cand %d: box coord %d differs by %g", name, i, j, delta)
				}
			}
		}
	}
}

// TestSelectTopK: quickselect must put the k highest scores in the
// front partition for assorted sizes and duplicate distributions.
func TestSelectTopK(t *testing.T) {
	r := rng.New(0x70b5)
	for _, n := range []int{2, 3, 17, 100, 1000} {
		for _, k := range []int{1, n / 2, n - 1} {
			if k < 1 {
				continue
			}
			d := make([]Detection, n)
			for i := range d {
				d[i].Score = math.Round(r.Range(0, 20)) / 20 // heavy ties
			}
			ref := append([]Detection(nil), d...)
			sort.SliceStable(ref, func(i, j int) bool { return ref[i].Score > ref[j].Score })
			selectTopK(d, k)
			got := append([]Detection(nil), d[:k]...)
			sort.SliceStable(got, func(i, j int) bool { return got[i].Score > got[j].Score })
			for i := 0; i < k; i++ {
				if got[i].Score != ref[i].Score {
					t.Fatalf("n=%d k=%d: top-k score %d = %v, want %v", n, k, i, got[i].Score, ref[i].Score)
				}
			}
		}
	}
}

// TestPostprocessOrderingAllCounts is the ordering satellite: the
// documented descending-score order must hold whether the candidate
// count is below, at, or above MaxCandidates — it may not silently
// depend on NMS internals.
func TestPostprocessOrderingAllCounts(t *testing.T) {
	spec := HeadSpec{
		Kind:    HeadYOLOv5,
		Classes: 3,
		Levels:  []HeadLevel{{Stride: 8, Anchors: [][2]float64{{12, 12}, {40, 40}}}},
	}
	r := rng.New(0x04de4)
	head := tensor.New(2*(5+3), 16, 16)
	for i := range head.Data {
		head.Data[i] = float32(r.Range(-2, 4))
	}
	heads := []*tensor.Tensor{head}
	_, meta := tensor.LetterboxImage(tensor.New(3, 100, 200), 128, 128, 0)
	for _, exact := range []bool{false, true} {
		for _, maxCand := range []int{0 /* default 1000 > n */, 64, 7, 1} {
			cfg := Config{Spec: spec, ScoreThreshold: 0.05, MaxCandidates: maxCand, ExactMath: exact}
			dets, err := Postprocess(heads, meta, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if maxCand == 0 && len(dets) < 2 {
				t.Fatalf("exact=%v: only %d detections; ordering check is vacuous", exact, len(dets))
			}
			for i := 1; i < len(dets); i++ {
				if dets[i].Score > dets[i-1].Score {
					t.Errorf("exact=%v maxCand=%d: dets[%d].Score %v > dets[%d].Score %v — descending order broken",
						exact, maxCand, i, dets[i].Score, i-1, dets[i-1].Score)
				}
			}
		}
	}
}

// TestPostprocessFastVsExactSameBoxes: the full pipeline (TopK + NMS +
// un-letterbox) must keep the same detections under fast and exact
// math on a dense random head — the end-to-end version of
// TestDecodeFastMatchesExact.
func TestPostprocessFastVsExactSameBoxes(t *testing.T) {
	spec := yoloSpec1()
	r := rng.New(0xba5e)
	head := tensor.New(6, 8, 8)
	for i := range head.Data {
		head.Data[i] = float32(r.Range(-3, 3))
	}
	heads := []*tensor.Tensor{head}
	_, meta := tensor.LetterboxImage(tensor.New(3, 48, 64), 64, 64, 0)
	fast, err := Postprocess(heads, meta, Config{Spec: spec, ScoreThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Postprocess(heads, meta, Config{Spec: spec, ScoreThreshold: 0.1, ExactMath: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) == 0 || len(fast) != len(exact) {
		t.Fatalf("fast %d detections, exact %d (want equal, nonzero)", len(fast), len(exact))
	}
	for i := range fast {
		if fast[i].Class != exact[i].Class {
			t.Errorf("det %d: class %d vs %d", i, fast[i].Class, exact[i].Class)
		}
		if d := math.Abs(fast[i].Score - exact[i].Score); d > 2*FastSigmoidTolerance {
			t.Errorf("det %d: score diff %g", i, d)
		}
	}
}

// TestPostprocessIntoAppends: PostprocessInto must append after dst's
// existing elements and leave them untouched.
func TestPostprocessIntoAppends(t *testing.T) {
	head := tensor.New(1, 6, 1, 1)
	head.Data[4], head.Data[5] = 4, 4
	_, meta := tensor.LetterboxImage(tensor.New(3, 16, 16), 16, 16, 0)
	sentinel := Detection{Class: 99, Score: 123}
	out, err := PostprocessInto([]Detection{sentinel}, []*tensor.Tensor{head}, meta, Config{Spec: yoloSpec1(), ScoreThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != sentinel {
		t.Fatalf("PostprocessInto clobbered dst: %+v", out)
	}
}

// TestRawLogitGateBoundaries pins the gate's degenerate thresholds.
func TestRawLogitGateBoundaries(t *testing.T) {
	if g := rawLogitGate(0); !math.IsInf(float64(g), -1) {
		t.Errorf("gate(0) = %v, want -Inf (keep everything)", g)
	}
	if g := rawLogitGate(1); !math.IsInf(float64(g), 1) {
		t.Errorf("gate(1) = %v, want +Inf (drop everything)", g)
	}
	if g := rawLogitGate(0.5); math.Abs(float64(g)) > 1e-7 {
		t.Errorf("gate(0.5) = %v, want 0", g)
	}
}
