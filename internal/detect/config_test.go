package detect

import "testing"

// config_test.go pins Config.WithDefaults's substitution rules: zero
// and negative values mean "unset" and take the documented defaults,
// while any positive value — however unusual — is preserved verbatim.

func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "zero config gets every default",
			in:   Config{},
			want: Config{ScoreThreshold: 0.25, IoUThreshold: 0.45, MaxCandidates: 1000, MaxDetections: 300},
		},
		{
			name: "negative values are unset too",
			in:   Config{ScoreThreshold: -1, IoUThreshold: -0.5, MaxCandidates: -7, MaxDetections: -300},
			want: Config{ScoreThreshold: 0.25, IoUThreshold: 0.45, MaxCandidates: 1000, MaxDetections: 300},
		},
		{
			name: "explicit values survive",
			in:   Config{ScoreThreshold: 0.6, IoUThreshold: 0.9, MaxCandidates: 50, MaxDetections: 5},
			want: Config{ScoreThreshold: 0.6, IoUThreshold: 0.9, MaxCandidates: 50, MaxDetections: 5},
		},
		{
			name: "partial overrides fill only the gaps",
			in:   Config{ScoreThreshold: 0.01},
			want: Config{ScoreThreshold: 0.01, IoUThreshold: 0.45, MaxCandidates: 1000, MaxDetections: 300},
		},
		{
			name: "tiny positive thresholds are preserved, not rounded to defaults",
			in:   Config{ScoreThreshold: 1e-9, IoUThreshold: 1e-9},
			want: Config{ScoreThreshold: 1e-9, IoUThreshold: 1e-9, MaxCandidates: 1000, MaxDetections: 300},
		},
		{
			name: "thresholds at one are legal",
			in:   Config{ScoreThreshold: 1, IoUThreshold: 1},
			want: Config{ScoreThreshold: 1, IoUThreshold: 1, MaxCandidates: 1000, MaxDetections: 300},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.WithDefaults()
			if got.ScoreThreshold != tc.want.ScoreThreshold {
				t.Errorf("ScoreThreshold = %v, want %v", got.ScoreThreshold, tc.want.ScoreThreshold)
			}
			if got.IoUThreshold != tc.want.IoUThreshold {
				t.Errorf("IoUThreshold = %v, want %v", got.IoUThreshold, tc.want.IoUThreshold)
			}
			if got.MaxCandidates != tc.want.MaxCandidates {
				t.Errorf("MaxCandidates = %v, want %v", got.MaxCandidates, tc.want.MaxCandidates)
			}
			if got.MaxDetections != tc.want.MaxDetections {
				t.Errorf("MaxDetections = %v, want %v", got.MaxDetections, tc.want.MaxDetections)
			}
		})
	}
}

// TestConfigWithDefaultsKeepsSpec: the substitution must never touch
// the head-decode metadata.
func TestConfigWithDefaultsKeepsSpec(t *testing.T) {
	spec := HeadSpec{Kind: HeadYOLOv5, Classes: 3, Levels: []HeadLevel{{Stride: 8, Anchors: [][2]float64{{4, 4}}}}}
	got := Config{Spec: spec}.WithDefaults()
	if got.Spec.Classes != 3 || len(got.Spec.Levels) != 1 || got.Spec.Levels[0].Stride != 8 {
		t.Errorf("WithDefaults altered the spec: %+v", got.Spec)
	}
}
