// Package detect implements the post-network half of the detection
// pipeline. It provides the geometric primitives shared by the
// evaluation stack — boxes, IoU, confidence filtering, class-aware
// non-maximum suppression — plus the head decoders that turn raw
// network outputs into boxes: YOLOv5 anchor-grid decode and RetinaNet
// anchor decode, driven by per-model HeadSpec metadata exported from
// internal/models.
//
// Postprocess chains decode -> score filter -> NMS -> un-letterbox for
// one image, and runs an allocation-free float32 hot path by default:
// polynomial sigmoid within FastSigmoidTolerance, raw-logit
// pre-gating, pooled candidate scratch, quickselect TopK and
// class-bucketed NMS (see fast.go; Config.ExactMath pins the float64
// reference decoders instead). The package is deliberately engine-free
// (so the model zoo can export HeadSpecs without import cycles); the
// image -> boxes Detector that feeds Postprocess from a compiled
// engine.Program lives in the root rtoss package, and the served
// variant in internal/serve (Server.Detect, the batched postprocess
// path).
package detect

import (
	"fmt"
	"sort"
)

// Box is an axis-aligned box in pixel coordinates (x1,y1 top-left,
// x2,y2 bottom-right, exclusive).
type Box struct {
	X1, Y1, X2, Y2 float64
}

// NewBox returns a normalised box (coordinates swapped if reversed).
func NewBox(x1, y1, x2, y2 float64) Box {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Box{x1, y1, x2, y2}
}

// Width returns the box width (>= 0).
func (b Box) Width() float64 { return b.X2 - b.X1 }

// Height returns the box height (>= 0).
func (b Box) Height() float64 { return b.Y2 - b.Y1 }

// Area returns the box area.
func (b Box) Area() float64 { return b.Width() * b.Height() }

// Center returns the box centre point.
func (b Box) Center() (float64, float64) {
	return (b.X1 + b.X2) / 2, (b.Y1 + b.Y2) / 2
}

// Translate returns the box shifted by (dx, dy).
func (b Box) Translate(dx, dy float64) Box {
	return Box{b.X1 + dx, b.Y1 + dy, b.X2 + dx, b.Y2 + dy}
}

// Scale returns the box scaled about its centre by factor s.
func (b Box) Scale(s float64) Box {
	cx, cy := b.Center()
	hw, hh := b.Width()*s/2, b.Height()*s/2
	return Box{cx - hw, cy - hh, cx + hw, cy + hh}
}

// Clip returns the box clipped to [0,w]×[0,h]. Boxes entirely outside
// the frame collapse to a zero-area box on the nearest edge. It runs
// in the postprocess emit loop, hence the noalloc gate.
//
//rtoss:noalloc
func (b Box) Clip(w, h float64) Box {
	return Box{clamp(b.X1, w), clamp(b.Y1, h), clamp(b.X2, w), clamp(b.Y2, h)}
}

//rtoss:noalloc
func clamp(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%.1f,%.1f,%.1f,%.1f]", b.X1, b.Y1, b.X2, b.Y2)
}

// IoU returns the intersection-over-union of two boxes in [0, 1].
// It sits in the NMS inner loop, hence the noalloc gate.
//
//rtoss:noalloc
func IoU(a, b Box) float64 {
	ix1, iy1 := max(a.X1, b.X1), max(a.Y1, b.Y1)
	ix2, iy2 := min(a.X2, b.X2), min(a.Y2, b.Y2)
	iw, ih := ix2-ix1, iy2-iy1
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Detection is one detector output.
type Detection struct {
	Box   Box
	Class int
	Score float64
}

// FilterByScore returns detections with Score >= threshold, preserving
// order.
func FilterByScore(dets []Detection, threshold float64) []Detection {
	var out []Detection
	for _, d := range dets {
		if d.Score >= threshold {
			out = append(out, d)
		}
	}
	return out
}

// NMS performs class-aware non-maximum suppression: detections are
// processed in descending score order and any detection overlapping an
// already-kept same-class detection with IoU > iouThreshold is dropped.
func NMS(dets []Detection, iouThreshold float64) []Detection {
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var kept []Detection
	for _, d := range sorted {
		suppress := false
		for _, k := range kept {
			if k.Class == d.Class && IoU(k.Box, d.Box) > iouThreshold {
				suppress = true
				break
			}
		}
		if !suppress {
			kept = append(kept, d)
		}
	}
	return kept
}

// GroundTruth is one annotated object.
type GroundTruth struct {
	Box   Box
	Class int
	// Difficult marks truncated/occluded objects excluded from
	// evaluation penalties when missed (KITTI convention).
	Difficult bool
}
