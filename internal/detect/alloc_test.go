package detect

import (
	"testing"

	"rtoss/internal/tensor"
)

// alloc_test.go pins the zero-allocation contract of the post-network
// hot path with testing.AllocsPerRun — the runtime-measured complement
// of the static //rtoss:noalloc gate rtoss-vet enforces. The benchmarks
// report allocs/op too, but only these tests fail the build when the
// steady state regresses.

// allocsSteadyState measures f's steady-state allocation rate. The hot
// path's scratch lives in a sync.Pool, which a GC between runs can
// empty mid-measurement (the refill is a real allocation but not a
// regression), so a nonzero measurement is retried a few times after
// re-warming before it is believed.
func allocsSteadyState(f func()) float64 {
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		f() // warm the pooled scratch and output capacity
		allocs = testing.AllocsPerRun(100, f)
		if allocs == 0 {
			break
		}
	}
	return allocs
}

// TestDecodeIntoZeroAlloc pins that steady-state fast-path decoding
// into a capacity-retaining buffer performs zero allocations per call,
// for both head layouts.
func TestDecodeIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race drops sync.Pool items and allocates internally; zero-alloc is only meaningful without it")
	}
	cases := []struct {
		name  string
		spec  HeadSpec
		heads []*tensor.Tensor
	}{
		{"yolov5", benchYOLOSpec(), nil},
		{"retinanet", benchRetinaSpec(), nil},
	}
	cases[0].heads = benchYOLOHeads(cases[0].spec, 640)
	cases[1].heads = benchRetinaHeads(cases[1].spec, 640)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var dst []Detection
			var err error
			if dst, err = DecodeInto(dst, tc.heads, tc.spec, 0.25, false); err != nil {
				t.Fatal(err)
			}
			if len(dst) == 0 {
				t.Fatal("fixture produced no candidates; the measurement would be vacuous")
			}
			got := allocsSteadyState(func() {
				if dst, err = DecodeInto(dst[:0], tc.heads, tc.spec, 0.25, false); err != nil {
					t.Fatal(err)
				}
			})
			if got != 0 {
				t.Errorf("DecodeInto: %v allocs/op in steady state, want 0", got)
			}
		})
	}
}

// TestPostprocessIntoZeroAlloc pins the full post-network stage —
// decode, TopK, sort, class-bucketed NMS, un-letterbox — at zero
// allocations per call in the serving steady state.
func TestPostprocessIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race drops sync.Pool items and allocates internally; zero-alloc is only meaningful without it")
	}
	spec := benchYOLOSpec()
	heads := benchYOLOHeads(spec, 640)
	_, meta := tensor.LetterboxImage(tensor.New(3, 375, 1242), 640, 640, tensor.LetterboxFill)
	cfg := Config{Spec: spec}
	var dst []Detection
	var err error
	if dst, err = PostprocessInto(dst, heads, meta, cfg); err != nil {
		t.Fatal(err)
	}
	if len(dst) == 0 {
		t.Fatal("fixture produced no detections; the measurement would be vacuous")
	}
	got := allocsSteadyState(func() {
		if dst, err = PostprocessInto(dst[:0], heads, meta, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("PostprocessInto: %v allocs/op in steady state, want 0", got)
	}
}
