package detect

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBoxNormalises(t *testing.T) {
	b := NewBox(10, 20, 5, 2)
	if b.X1 != 5 || b.Y1 != 2 || b.X2 != 10 || b.Y2 != 20 {
		t.Fatalf("box %v", b)
	}
}

func TestAreaAndCenter(t *testing.T) {
	b := NewBox(0, 0, 4, 6)
	if b.Area() != 24 {
		t.Fatalf("area %v", b.Area())
	}
	cx, cy := b.Center()
	if cx != 2 || cy != 3 {
		t.Fatalf("center %v %v", cx, cy)
	}
}

func TestIoUIdentical(t *testing.T) {
	b := NewBox(0, 0, 10, 10)
	if got := IoU(b, b); got != 1 {
		t.Fatalf("IoU self = %v", got)
	}
}

func TestIoUDisjoint(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	b := NewBox(20, 20, 30, 30)
	if got := IoU(a, b); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	b := NewBox(5, 0, 15, 10)
	// inter = 50, union = 150.
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("IoU = %v want 1/3", got)
	}
}

func TestIoUContainment(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	b := NewBox(2, 2, 7, 7)
	want := 25.0 / 100.0
	if got := IoU(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("IoU = %v want %v", got, want)
	}
}

func TestQuickIoUSymmetricBounded(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float32) bool {
		a := NewBox(float64(ax1), float64(ay1), float64(ax2), float64(ay2))
		b := NewBox(float64(bx1), float64(by1), float64(bx2), float64(by2))
		u, v := IoU(a, b), IoU(b, a)
		return u == v && u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleKeepsCenter(t *testing.T) {
	b := NewBox(0, 0, 10, 20)
	s := b.Scale(0.5)
	cx1, cy1 := b.Center()
	cx2, cy2 := s.Center()
	if cx1 != cx2 || cy1 != cy2 {
		t.Fatal("scale moved the centre")
	}
	if math.Abs(s.Area()-b.Area()/4) > 1e-9 {
		t.Fatalf("area %v want %v", s.Area(), b.Area()/4)
	}
}

func TestClip(t *testing.T) {
	b := NewBox(-5, -5, 15, 15).Clip(10, 10)
	if b.X1 != 0 || b.Y1 != 0 || b.X2 != 10 || b.Y2 != 10 {
		t.Fatalf("clip %v", b)
	}
	empty := NewBox(20, 20, 30, 30).Clip(10, 10)
	if empty.Area() != 0 {
		t.Fatalf("out-of-frame clip should be empty, got %v", empty)
	}
}

func TestFilterByScore(t *testing.T) {
	dets := []Detection{{Score: 0.9}, {Score: 0.2}, {Score: 0.5}}
	out := FilterByScore(dets, 0.5)
	if len(out) != 2 {
		t.Fatalf("filtered %d", len(out))
	}
}

func TestNMSSuppressesSameClassOverlap(t *testing.T) {
	dets := []Detection{
		{Box: NewBox(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: NewBox(1, 1, 11, 11), Class: 0, Score: 0.8}, // overlaps first
		{Box: NewBox(50, 50, 60, 60), Class: 0, Score: 0.7},
	}
	out := NMS(dets, 0.5)
	if len(out) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(out))
	}
	if out[0].Score != 0.9 {
		t.Fatal("NMS should keep highest score first")
	}
}

func TestNMSKeepsDifferentClasses(t *testing.T) {
	dets := []Detection{
		{Box: NewBox(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: NewBox(0, 0, 10, 10), Class: 1, Score: 0.8},
	}
	if out := NMS(dets, 0.5); len(out) != 2 {
		t.Fatalf("class-aware NMS kept %d, want 2", len(out))
	}
}

func TestNMSThresholdBoundary(t *testing.T) {
	// IoU exactly at threshold is NOT suppressed (strict >).
	dets := []Detection{
		{Box: NewBox(0, 0, 10, 10), Class: 0, Score: 0.9},
		{Box: NewBox(5, 0, 15, 10), Class: 0, Score: 0.8}, // IoU = 1/3
	}
	if out := NMS(dets, 1.0/3); len(out) != 2 {
		t.Fatal("IoU == threshold must not suppress")
	}
}

func TestQuickNMSOutputDisjointPerClass(t *testing.T) {
	f := func(raw []uint16) bool {
		var dets []Detection
		for i := 0; i+4 < len(raw); i += 5 {
			x := float64(raw[i] % 100)
			y := float64(raw[i+1] % 100)
			w := float64(raw[i+2]%30) + 1
			h := float64(raw[i+3]%30) + 1
			dets = append(dets, Detection{
				Box:   NewBox(x, y, x+w, y+h),
				Class: int(raw[i+4] % 3),
				Score: float64(raw[i+4]%100) / 100,
			})
		}
		out := NMS(dets, 0.45)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[i].Class == out[j].Class && IoU(out[i].Box, out[j].Box) > 0.45 {
					return false
				}
			}
		}
		return len(out) <= len(dets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNMS100(b *testing.B) {
	var dets []Detection
	for i := 0; i < 100; i++ {
		x := float64(i % 20 * 30)
		y := float64(i / 20 * 30)
		dets = append(dets, Detection{Box: NewBox(x, y, x+40, y+40), Class: i % 8, Score: float64(i) / 100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NMS(dets, 0.45)
	}
}
