package detect

import (
	"fmt"
	"math"

	"rtoss/internal/tensor"
)

// decode.go turns raw detection-head tensors into candidate boxes in
// model-input pixel space. The two decode families mirror the two
// layer-faithful zoo models: YOLOv5's anchor-grid heads (one fused
// prediction map per pyramid level) and RetinaNet's anchor heads
// (separate classification and regression maps over a shared anchor
// set). Which family applies, and with which strides/anchors, is
// described by a HeadSpec — exported per model by internal/models.

// HeadKind selects the decode family for a model's heads.
type HeadKind int

const (
	// HeadYOLOv5 decodes fused [A*(5+classes), H, W] prediction maps,
	// one per level, with the YOLOv5 v6 box parameterisation.
	HeadYOLOv5 HeadKind = iota
	// HeadRetinaNet decodes a [A*classes, H, W] classification map and
	// a [A*4, H, W] box-delta map over one shared anchor set.
	HeadRetinaNet
)

func (k HeadKind) String() string {
	switch k {
	case HeadYOLOv5:
		return "yolov5"
	case HeadRetinaNet:
		return "retinanet"
	}
	return fmt.Sprintf("HeadKind(%d)", int(k))
}

// HeadLevel describes one pyramid level of a detection head.
type HeadLevel struct {
	// Stride is the level's cumulative downsampling factor: one grid
	// cell covers Stride x Stride input pixels.
	Stride int
	// Anchors are the level's prior box sizes as (w, h) pairs in
	// model-input pixels.
	Anchors [][2]float64
}

// HeadSpec is the decode metadata for one detector architecture: which
// family its heads belong to and the stride/anchor layout per level.
// Specs for the zoo models are exported by internal/models.
type HeadSpec struct {
	Kind    HeadKind
	Classes int
	// Levels holds one entry per YOLO head tensor; RetinaNet's shared
	// head uses a single entry (the level its maps are computed on).
	Levels []HeadLevel
}

// MaxStride returns the coarsest level stride (model input sizes must
// be divisible by it for the grids to line up).
func (s HeadSpec) MaxStride() int {
	max := 1
	for _, l := range s.Levels {
		if l.Stride > max {
			max = l.Stride
		}
	}
	return max
}

// Validate checks the spec against a set of head tensors.
func (s HeadSpec) Validate(heads []*tensor.Tensor) error {
	if s.Classes <= 0 {
		return fmt.Errorf("detect: head spec has %d classes", s.Classes)
	}
	if len(s.Levels) == 0 {
		return fmt.Errorf("detect: head spec has no levels")
	}
	switch s.Kind {
	case HeadYOLOv5:
		if len(heads) != len(s.Levels) {
			return fmt.Errorf("detect: %d YOLO heads for %d levels", len(heads), len(s.Levels))
		}
		for i, h := range heads {
			c, _, _ := headDims(h)
			want := len(s.Levels[i].Anchors) * (5 + s.Classes)
			if c != want {
				return fmt.Errorf("detect: YOLO head %d has %d channels, want %d (%d anchors x (5+%d))",
					i, c, want, len(s.Levels[i].Anchors), s.Classes)
			}
		}
	case HeadRetinaNet:
		if len(heads) != 2 {
			return fmt.Errorf("detect: RetinaNet wants [cls, reg] heads, got %d", len(heads))
		}
		a := len(s.Levels[0].Anchors)
		cc, ch, cw := headDims(heads[0])
		rc, rh, rw := headDims(heads[1])
		if cc != a*s.Classes {
			return fmt.Errorf("detect: RetinaNet cls head has %d channels, want %d (%d anchors x %d classes)",
				cc, a*s.Classes, a, s.Classes)
		}
		if rc != a*4 {
			return fmt.Errorf("detect: RetinaNet reg head has %d channels, want %d (%d anchors x 4)", rc, a*4, a)
		}
		if ch != rh || cw != rw {
			return fmt.Errorf("detect: RetinaNet cls/reg grids differ: %dx%d vs %dx%d", ch, cw, rh, rw)
		}
	default:
		return fmt.Errorf("detect: unknown head kind %v", s.Kind)
	}
	return nil
}

// headDims normalises a head tensor ([C, H, W] or [1, C, H, W]) to its
// channel/grid dimensions.
func headDims(t *tensor.Tensor) (c, h, w int) {
	switch {
	case t.Rank() == 3:
		return t.Dim(0), t.Dim(1), t.Dim(2)
	case t.Rank() == 4 && t.Dim(0) == 1:
		return t.Dim(1), t.Dim(2), t.Dim(3)
	}
	panic(fmt.Sprintf("detect: head tensor %v is not a single image map", t.Shape()))
}

// headData returns the flat [C*H*W] data of a single-image head map.
func headData(t *tensor.Tensor) []float32 { return t.Data }

// Decode turns raw head tensors into candidate detections in
// model-input pixel coordinates, keeping only candidates whose score
// reaches scoreThresh. Scores are objectness x best-class probability
// for YOLO and best-class probability for RetinaNet; each location/
// anchor emits at most its best class.
//
// Decode is the exact float64 reference implementation (golden tests
// pin it to math.Exp precision). The serving hot path is DecodeInto
// with exact=false — the float32 rewrite in fast.go — which Postprocess
// uses unless Config.ExactMath is set.
func Decode(heads []*tensor.Tensor, spec HeadSpec, scoreThresh float64) ([]Detection, error) {
	if err := spec.Validate(heads); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case HeadYOLOv5:
		return decodeYOLOv5(heads, spec, scoreThresh), nil
	case HeadRetinaNet:
		return decodeRetinaNet(heads, spec, scoreThresh), nil
	}
	return nil, fmt.Errorf("detect: unknown head kind %v", spec.Kind)
}

// decodeYOLOv5 implements the YOLOv5 v6 box parameterisation. For grid
// cell (gx, gy), anchor (aw, ah) and raw outputs (tx, ty, tw, th, to,
// tc...):
//
//	bx = (2*sigmoid(tx) - 0.5 + gx) * stride
//	by = (2*sigmoid(ty) - 0.5 + gy) * stride
//	bw = (2*sigmoid(tw))^2 * aw
//	bh = (2*sigmoid(th))^2 * ah
//	score = sigmoid(to) * max_c sigmoid(tc)
func decodeYOLOv5(heads []*tensor.Tensor, spec HeadSpec, scoreThresh float64) []Detection {
	var dets []Detection
	per := 5 + spec.Classes
	for li, head := range heads {
		lv := spec.Levels[li]
		_, gh, gw := headDims(head)
		data := headData(head)
		plane := gh * gw
		for ai, anchor := range lv.Anchors {
			base := ai * per * plane
			for gy := 0; gy < gh; gy++ {
				for gx := 0; gx < gw; gx++ {
					cell := gy*gw + gx
					at := func(ch int) float64 { return float64(data[base+ch*plane+cell]) }
					obj := sigmoid(at(4))
					if obj < scoreThresh {
						continue // score = obj * cls <= obj
					}
					bestC, bestP := 0, 0.0
					for c := 0; c < spec.Classes; c++ {
						if p := sigmoid(at(5 + c)); p > bestP {
							bestC, bestP = c, p
						}
					}
					score := obj * bestP
					if score < scoreThresh {
						continue
					}
					bx := (2*sigmoid(at(0)) - 0.5 + float64(gx)) * float64(lv.Stride)
					by := (2*sigmoid(at(1)) - 0.5 + float64(gy)) * float64(lv.Stride)
					bw := sq(2*sigmoid(at(2))) * anchor[0]
					bh := sq(2*sigmoid(at(3))) * anchor[1]
					dets = append(dets, Detection{
						Box:   Box{bx - bw/2, by - bh/2, bx + bw/2, by + bh/2},
						Class: bestC,
						Score: score,
					})
				}
			}
		}
	}
	return dets
}

// maxLogDelta clamps RetinaNet's exponentiated size deltas (standard
// practice: exp(4) ~ 55x is already far beyond a sane regression).
const maxLogDelta = 4.0

// decodeRetinaNet decodes the shared-anchor classification and
// regression maps. For the anchor (aw, ah) centred on cell (gx, gy) and
// deltas (dx, dy, dw, dh):
//
//	cx = (gx + 0.5)*stride + dx*aw    w = aw * exp(min(dw, 4))
//	cy = (gy + 0.5)*stride + dy*ah    h = ah * exp(min(dh, 4))
//	score = max_c sigmoid(cls[c])
func decodeRetinaNet(heads []*tensor.Tensor, spec HeadSpec, scoreThresh float64) []Detection {
	lv := spec.Levels[0]
	cls, reg := heads[0], heads[1]
	_, gh, gw := headDims(cls)
	cdata, rdata := headData(cls), headData(reg)
	plane := gh * gw
	var dets []Detection
	for ai, anchor := range lv.Anchors {
		cbase := ai * spec.Classes * plane
		rbase := ai * 4 * plane
		for gy := 0; gy < gh; gy++ {
			for gx := 0; gx < gw; gx++ {
				cell := gy*gw + gx
				bestC, bestP := 0, 0.0
				for c := 0; c < spec.Classes; c++ {
					if p := sigmoid(float64(cdata[cbase+c*plane+cell])); p > bestP {
						bestC, bestP = c, p
					}
				}
				if bestP < scoreThresh {
					continue
				}
				dx := float64(rdata[rbase+0*plane+cell])
				dy := float64(rdata[rbase+1*plane+cell])
				dw := math.Min(float64(rdata[rbase+2*plane+cell]), maxLogDelta)
				dh := math.Min(float64(rdata[rbase+3*plane+cell]), maxLogDelta)
				cx := (float64(gx)+0.5)*float64(lv.Stride) + dx*anchor[0]
				cy := (float64(gy)+0.5)*float64(lv.Stride) + dy*anchor[1]
				w := anchor[0] * math.Exp(dw)
				h := anchor[1] * math.Exp(dh)
				dets = append(dets, Detection{
					Box:   Box{cx - w/2, cy - h/2, cx + w/2, cy + h/2},
					Class: bestC,
					Score: bestP,
				})
			}
		}
	}
	return dets
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func sq(v float64) float64 { return v * v }
