package rtoss

import (
	"math"
	"strings"
	"testing"
)

// Integration tests over the public facade: the complete pipelines a
// downstream user would run, exercised through the exported API only.

func TestPublicPruneEvaluatePipeline(t *testing.T) {
	m := NewYOLOv5s()
	base := m.Clone()
	res, err := NewRTOSS(2).Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CompressionRatio()-4.4) > 0.3 {
		t.Errorf("compression %.2f, paper 4.4", res.CompressionRatio())
	}
	q := Assess(base, m, res)
	if q.MAP <= 0 || q.MAP > 99 {
		t.Errorf("surrogate mAP %v out of range", q.MAP)
	}
	for _, p := range []Platform{RTX2080Ti(), JetsonTX2()} {
		baseCost, err := Estimate(base, p, Dense)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Estimate(m, p, res.Structure)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Speedup(baseCost) <= 1.3 {
			t.Errorf("%s speedup %.2f too low", p.Name, cost.Speedup(baseCost))
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	bs := Baselines()
	if len(bs) != 5 {
		t.Fatalf("baselines %d, want 5", len(bs))
	}
	m := NewYOLOv5s()
	res, err := bs[0].Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparsity() <= 0 {
		t.Error("baseline pruned nothing")
	}
}

func TestPublicEncode(t *testing.T) {
	m := NewYOLOv5s()
	res, err := NewRTOSS(3).Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	enc := Encode(m, res.Structure)
	if enc.CompressionRatio() <= 1.5 {
		t.Errorf("encoded compression %.2f too low", enc.CompressionRatio())
	}
}

func TestPublicForward(t *testing.T) {
	// Real execution through the facade on a reduced-resolution input.
	m := NewYOLOv5s()
	m.InputH, m.InputW = 64, 64
	input := NewTensor(1, 3, 64, 64)
	for i := range input.Data {
		input.Data[i] = float32(i%13)/13 - 0.5
	}
	out, err := Forward(m, input)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("empty forward output")
	}
}

func TestPublicCanonicalPatterns(t *testing.T) {
	total := len(CanonicalPatterns(2).Masks) + len(CanonicalPatterns(3).Masks)
	if total != 21 {
		t.Errorf("canonical patterns %d, paper says 21", total)
	}
}

func TestPublicKITTIPipeline(t *testing.T) {
	scenes := KITTIScenes(5, 20)
	if len(scenes) != 20 {
		t.Fatalf("scenes %d", len(scenes))
	}
	good := SceneMAP(scenes, 1.0, 3)
	bad := SceneMAP(scenes, 0.7, 3)
	if good <= bad {
		t.Errorf("scene mAP ordering broken: %.3f vs %.3f", good, bad)
	}
}

func TestPublicAblationConfig(t *testing.T) {
	f, err := NewRTOSSWithConfig(RTOSSConfig{Entries: 3, UseDFSGrouping: false, Transform1x1: true})
	if err != nil {
		t.Fatal(err)
	}
	m := NewYOLOv5s()
	res, err := f.Prune(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.InheritedKernels != 0 {
		t.Error("grouping disabled but kernels inherited")
	}
	if _, err := NewRTOSSWithConfig(RTOSSConfig{Entries: 9}); err == nil {
		t.Error("expected error for 9-entry config")
	}
}

func TestPublicEngineModes(t *testing.T) {
	m := NewYOLOv5s()
	if _, err := NewRTOSS(2).Prune(m); err != nil {
		t.Fatal(err)
	}
	input := NewTensor(1, 3, 64, 64)
	for i := range input.Data {
		input.Data[i] = float32(i%17)/17 - 0.5
	}
	dense, err := NewEngine(m, EngineOptions{Mode: EngineDense})
	if err != nil {
		t.Fatal(err)
	}
	want, err := dense.Output(input)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewEngine(m, EngineOptions{Mode: EngineSparse})
	if err != nil {
		t.Fatal(err)
	}
	if p, c := sparse.SparseLayers(); p == 0 || c == 0 {
		t.Fatalf("sparse engine compiled %d pattern / %d csr layers on a pruned model", p, c)
	}
	got, err := sparse.Output(input)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(want) {
		t.Fatalf("sparse output shape %v, dense %v", got.Shape(), want.Shape())
	}
	for i := range got.Data {
		if d := got.Data[i] - want.Data[i]; d < -1e-5 || d > 1e-5 {
			t.Fatalf("sparse output diverges from dense at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
	if _, err := ParseEngineMode("nonsense"); err == nil {
		t.Error("expected error for unknown engine mode")
	}
}

func TestPublicServeAPI(t *testing.T) {
	reg := NewServeRegistry()
	key := ServeKey{Arch: "YOLOv5s", Variant: "dense", Mode: EngineDense}
	prog, err := reg.Program(key)
	if err != nil {
		t.Fatal(err)
	}
	again, err := reg.Program(key)
	if err != nil {
		t.Fatal(err)
	}
	if prog != again {
		t.Fatal("registry rebuilt a cached Program")
	}
	input := NewTensor(1, 3, 64, 64)
	for i := range input.Data {
		input.Data[i] = float32(i%13)/13 - 0.5
	}
	want, err := prog.Output(input)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := prog.ForwardBatch([]*Tensor{input, input})
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != 2 || !batched[0].SameShape(want) {
		t.Fatalf("ForwardBatch returned %d outputs of shape %v, want 2 of %v",
			len(batched), batched[0].Shape(), want.Shape())
	}
	srv := NewServer(prog, ServeConfig{MaxBatch: 2})
	defer srv.Close()
	got, err := srv.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if d := got.Data[i] - want.Data[i]; d < -1e-5 || d > 1e-5 {
			t.Fatalf("served output diverges from direct forward at %d", i)
		}
	}
	if st := srv.Stats(); st.Requests != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 request completed", st)
	}
}

func TestPublicTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow analytic table regeneration in -short mode")
	}
	for _, fn := range []func() (*Table, error){Table1, Table2, Table3} {
		tab, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 || !strings.Contains(tab.Render(), "|") {
			t.Error("table did not render")
		}
	}
}
